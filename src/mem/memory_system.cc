#include "mem/memory_system.hh"

#include "check/audit.hh"
#include "ckpt/ckpt_io.hh"
#include "obs/stat_registry.hh"
#include "prof/hostprof.hh"
#include "sim/logging.hh"

namespace sw {

MemorySystem::MemorySystem(EventQueue &eq, const GpuConfig &cfg)
    : eventq(eq)
{
    dramModel = std::make_unique<Dram>(
        eq, Dram::Params{cfg.dramChannels, cfg.dramLatency,
                         cfg.dramCyclesPerSector, /*channelShift=*/5});

    Cache::Params l2_params;
    l2_params.name = "l2d";
    l2_params.sizeBytes = cfg.l2dBytes;
    l2_params.ways = cfg.l2dWays;
    l2_params.lineBytes = cfg.lineBytes;
    l2_params.sectorBytes = cfg.sectorBytes;
    l2_params.latency = cfg.l2dLatency;
    l2_params.mshrEntries = cfg.l2dMshrs;
    // PTE sectors attract very wide sharing (every concurrent walk of a
    // hot table level); GPU L2 merge lists are effectively per-sector.
    l2_params.maxMergesPerMshr = 4096;
    l2dCache = std::make_unique<Cache>(
        eq, l2_params,
        [this](PhysAddr addr, bool write, std::function<void()> on_fill) {
            dramModel->access(addr, write, std::move(on_fill));
        });

    Cache::Params l1_params;
    l1_params.sizeBytes = cfg.l1dBytes;
    l1_params.ways = cfg.l1dWays;
    l1_params.lineBytes = cfg.lineBytes;
    l1_params.sectorBytes = cfg.sectorBytes;
    l1_params.latency = cfg.l1dLatency;
    l1_params.mshrEntries = cfg.l1dMshrs;
    l1dCaches.reserve(cfg.numSms);
    for (SmId sm = 0; sm < cfg.numSms; ++sm) {
        l1_params.name = strprintf("l1d[%u]", sm);
        l1dCaches.push_back(std::make_unique<Cache>(
            eventq, l1_params,
            [this](PhysAddr addr, bool write, std::function<void()> on_fill) {
                l2dCache->access(addr, write, std::move(on_fill));
            }));
    }
}

void
MemorySystem::access(MemAccess acc)
{
    SW_PROF_SCOPE(prof::Zone::CacheDram);
    if (acc.pte) {
        // PTE path: L2-only caching.
        l2dCache->access(acc.addr, acc.write, std::move(acc.onDone));
        return;
    }
    SW_ASSERT(acc.sm < l1dCaches.size(),
              "data access from unknown SM %u", acc.sm);
    l1dCaches[acc.sm]->access(acc.addr, acc.write, std::move(acc.onDone));
}

void
MemorySystem::resetStats()
{
    for (auto &cache : l1dCaches)
        cache->resetStats();
    l2dCache->resetStats();
    dramModel->resetStats();
}

void
MemorySystem::registerAudits(Auditor &auditor)
{
    // Cache miss-tracking never exceeds the configured MSHR file, at any
    // level of the hierarchy.
    auditor.registerAudit(
        "mem.cache.mshr-capacity", AuditScope::Continuous,
        [this](AuditContext &ctx) {
            auto check = [&ctx](const Cache &cache) {
                if (cache.outstandingMshrs() > cache.params().mshrEntries) {
                    ctx.fail(strprintf(
                        "%s: %zu MSHRs outstanding, capacity %u",
                        cache.params().name.c_str(),
                        cache.outstandingMshrs(),
                        cache.params().mshrEntries));
                }
            };
            for (const auto &cache : l1dCaches)
                check(*cache);
            check(*l2dCache);
        });

    // Once the machine drains, every miss has been filled: no MSHR is
    // still allocated and nobody is parked waiting for one.
    auditor.registerAudit(
        "mem.cache.no-leaked-mshr", AuditScope::Quiescent,
        [this](AuditContext &ctx) {
            auto check = [&ctx](const Cache &cache) {
                if (cache.outstandingMshrs() != 0) {
                    ctx.fail(strprintf("%s: %zu MSHRs never filled",
                                       cache.params().name.c_str(),
                                       cache.outstandingMshrs()));
                }
                if (cache.waitingForMshrCount() != 0) {
                    ctx.fail(strprintf(
                        "%s: %zu requests still waiting for an MSHR",
                        cache.params().name.c_str(),
                        cache.waitingForMshrCount()));
                }
            };
            for (const auto &cache : l1dCaches)
                check(*cache);
            check(*l2dCache);
        });
}

void
MemorySystem::registerStats(StatGroup group)
{
    for (std::size_t sm = 0; sm < l1dCaches.size(); ++sm) {
        l1dCaches[sm]->registerStats(
            group.group(strprintf("l1d%zu", sm)));
    }
    l2dCache->registerStats(group.group("l2d"));
    dramModel->registerStats(group.group("dram"));
}

void
MemorySystem::saveState(CkptWriter &w) const
{
    w.section("mem");
    for (const auto &cache : l1dCaches)
        cache->saveState(w);
    l2dCache->saveState(w);
    dramModel->saveState(w);
}

void
MemorySystem::restoreState(CkptReader &r)
{
    r.expectSection("mem");
    for (auto &cache : l1dCaches)
        cache->restoreState(r);
    l2dCache->restoreState(r);
    dramModel->restoreState(r);
}

Cache::Stats
MemorySystem::aggregateL1dStats() const
{
    Cache::Stats agg;
    for (const auto &cache : l1dCaches) {
        const Cache::Stats &s = cache->stats();
        agg.accesses += s.accesses;
        agg.hits += s.hits;
        agg.misses += s.misses;
        agg.sectorMisses += s.sectorMisses;
        agg.mshrMerges += s.mshrMerges;
        agg.mshrFailures += s.mshrFailures;
        agg.evictions += s.evictions;
    }
    return agg;
}

} // namespace sw
