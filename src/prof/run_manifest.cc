#include "prof/run_manifest.hh"

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <thread>

#include "prof/hostprof.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

// Configure-time build facts; see src/prof/CMakeLists.txt.  The fallbacks
// keep the file compiling standalone (e.g. in tooling builds).
#ifndef SW_BUILD_GIT_DESCRIBE
#define SW_BUILD_GIT_DESCRIBE "unknown"
#endif
#ifndef SW_BUILD_COMPILER
#define SW_BUILD_COMPILER "unknown"
#endif
#ifndef SW_BUILD_FLAGS
#define SW_BUILD_FLAGS ""
#endif
#ifndef SW_BUILD_TYPE
#define SW_BUILD_TYPE "unknown"
#endif

#ifndef SOFTWALKER_AUDIT
#define SOFTWALKER_AUDIT 0
#endif
#ifndef SOFTWALKER_TRACE
#define SOFTWALKER_TRACE 1
#endif

namespace sw {

namespace {

/** Minimal JSON string escape (quotes, backslashes, control chars). */
std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

RunManifest
RunManifest::collect()
{
    RunManifest manifest;
    manifest.gitDescribe = SW_BUILD_GIT_DESCRIBE;
    manifest.compiler = SW_BUILD_COMPILER;
    manifest.flags = SW_BUILD_FLAGS;
    manifest.buildType = SW_BUILD_TYPE;
    manifest.hostprofCompiled = prof::kHostProfCompiled;
    manifest.auditCompiled = SOFTWALKER_AUDIT != 0;
    manifest.tracingCompiled = SOFTWALKER_TRACE != 0;

#if defined(__unix__) || defined(__APPLE__)
    char host[256] = "";
    if (gethostname(host, sizeof(host)) == 0) {
        host[sizeof(host) - 1] = '\0';
        manifest.hostname = host;
    }
#endif
    if (manifest.hostname.empty())
        manifest.hostname = "unknown";

    manifest.hardwareConcurrency = std::thread::hardware_concurrency();
    if (const char *env = std::getenv("SW_JOBS"); env && *env)
        manifest.swJobs = env;
    return manifest;
}

void
RunManifest::writeJson(std::ostream &out, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const std::string field = pad + "  ";
    char buf[128];

    out << "{\n";
    out << field << "\"schema\": \"softwalker.manifest/1\",\n";
    out << field << "\"git_describe\": \"" << escape(gitDescribe)
        << "\",\n";
    out << field << "\"compiler\": \"" << escape(compiler) << "\",\n";
    out << field << "\"flags\": \"" << escape(flags) << "\",\n";
    out << field << "\"build_type\": \"" << escape(buildType) << "\",\n";
    out << field << "\"hostprof_compiled\": "
        << (hostprofCompiled ? "true" : "false") << ",\n";
    out << field << "\"audit_compiled\": "
        << (auditCompiled ? "true" : "false") << ",\n";
    out << field << "\"tracing_compiled\": "
        << (tracingCompiled ? "true" : "false") << ",\n";
    out << field << "\"hostname\": \"" << escape(hostname) << "\",\n";
    out << field << "\"hardware_concurrency\": " << hardwareConcurrency
        << ",\n";
    out << field << "\"sw_jobs\": \"" << escape(swJobs) << "\"";
    if (configDigest) {
        std::snprintf(buf, sizeof(buf), "0x%016llx",
                      static_cast<unsigned long long>(configDigest));
        out << ",\n" << field << "\"config_digest\": \"" << buf << "\"";
    }
    if (!benchmark.empty()) {
        out << ",\n" << field << "\"benchmark\": \"" << escape(benchmark)
            << "\"";
    }
    if (warpInstrQuota || warmupInstrs || maxCycles) {
        std::snprintf(
            buf, sizeof(buf),
            "\"limits\": {\"quota\": %llu, \"warmup\": %llu, "
            "\"max_cycles\": %llu}",
            static_cast<unsigned long long>(warpInstrQuota),
            static_cast<unsigned long long>(warmupInstrs),
            static_cast<unsigned long long>(maxCycles));
        out << ",\n" << field << buf;
    }
    out << "\n" << pad << "}";
}

std::string
RunManifest::toJson(int indent) const
{
    std::ostringstream out;
    writeJson(out, indent);
    return out.str();
}

} // namespace sw
