#include "prof/hostprof.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "prof/run_manifest.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace sw {
namespace prof {

const char *
toString(Zone zone)
{
    switch (zone) {
      case Zone::Setup: return "setup";
      case Zone::SimLoop: return "sim_loop";
      case Zone::EventDispatch: return "event_dispatch";
      case Zone::SmExec: return "sm_exec";
      case Zone::TlbLookup: return "tlb_lookup";
      case Zone::PtwWalk: return "ptw_walk";
      case Zone::PwWarpExec: return "pw_warp_exec";
      case Zone::CacheDram: return "cache_dram";
      case Zone::StatsAudit: return "stats_audit";
      case Zone::ObsSample: return "obs_sample";
      case Zone::Report: return "report";
      case Zone::CkptSave: return "ckpt_save";
      case Zone::CkptRestore: return "ckpt_restore";
      case Zone::FfwdWarmup: return "ffwd_warmup";
    }
    return "unknown";
}

namespace detail {

/**
 * Per-thread accumulators.  Only the owning thread writes; the profiler
 * merges after workers joined (snapshot() during a live parallel sweep
 * is best-effort).  Records are never freed before process exit so the
 * thread_local pointers stay valid across reset().
 */
struct ThreadRecord
{
    ZoneTotals zones[kNumZones];

    struct Frame
    {
        Zone zone = Zone::Setup;
        std::uint64_t start = 0;
        std::uint64_t child = 0;  ///< nested-zone time to subtract
    };
    static constexpr int kMaxDepth = 64;
    Frame stack[kMaxDepth];
    int depth = 0;
    std::uint64_t drops = 0;

    static constexpr std::size_t kGaugeRing = 2048;
    std::vector<GaugeSample> gauges;
    std::size_t gaugeNext = 0;
    std::uint64_t gaugeCount = 0;
    std::uint64_t maxQueueDepth = 0;
    std::uint64_t maxSlabLive = 0;
    std::uint64_t maxSlabCapacity = 0;

    void
    clear()
    {
        for (ZoneTotals &z : zones)
            z = ZoneTotals{};
        depth = 0;
        drops = 0;
        gauges.clear();
        gaugeNext = 0;
        gaugeCount = 0;
        maxQueueDepth = 0;
        maxSlabLive = 0;
        maxSlabCapacity = 0;
    }
};

namespace {

struct Registry
{
    mutable std::mutex mu;
    std::vector<std::unique_ptr<ThreadRecord>> records;
    std::uint64_t enableNanos = 0;  ///< nowNanos() at setEnabled(true)
};

Registry &
registry()
{
    static Registry reg;
    return reg;
}

} // namespace

std::uint64_t
nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

ThreadRecord &
threadRecord()
{
    thread_local ThreadRecord *rec = nullptr;
    if (!rec) {
        auto owned = std::make_unique<ThreadRecord>();
        rec = owned.get();
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mu);
        reg.records.push_back(std::move(owned));
    }
    return *rec;
}

bool
zoneEnter(ThreadRecord &rec, Zone zone, std::uint64_t start_nanos)
{
    if (rec.depth >= ThreadRecord::kMaxDepth) {
        ++rec.drops;
        return false;
    }
    ThreadRecord::Frame &frame = rec.stack[rec.depth++];
    frame.zone = zone;
    frame.start = start_nanos;
    frame.child = 0;
    return true;
}

void
zoneExit(ThreadRecord &rec, std::uint64_t end_nanos)
{
    ThreadRecord::Frame &frame = rec.stack[--rec.depth];
    std::uint64_t elapsed =
        end_nanos > frame.start ? end_nanos - frame.start : 0;
    ZoneTotals &totals = rec.zones[static_cast<std::size_t>(frame.zone)];
    totals.totalNanos += elapsed;
    totals.selfNanos += elapsed > frame.child ? elapsed - frame.child : 0;
    ++totals.hits;
    if (rec.depth > 0)
        rec.stack[rec.depth - 1].child += elapsed;
}

} // namespace detail

namespace {
std::atomic<std::uint64_t> ckptBytesCounter{0};
} // namespace

void
addCheckpointBytes(std::uint64_t bytes)
{
    ckptBytesCounter.fetch_add(bytes, std::memory_order_relaxed);
}

std::uint64_t
checkpointBytes()
{
    return ckptBytesCounter.load(std::memory_order_relaxed);
}

HostProfiler &
HostProfiler::instance()
{
    static HostProfiler profiler;
    return profiler;
}

void
HostProfiler::setEnabled(bool on)
{
    if (on && !enabled())
        detail::registry().enableNanos = detail::nowNanos();
    enabledFlag.store(on, std::memory_order_relaxed);
}

void
HostProfiler::reset()
{
    detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (auto &rec : reg.records)
        rec->clear();
    reg.enableNanos = enabled() ? detail::nowNanos() : 0;
}

void
HostProfiler::gaugeSample(std::uint64_t sim_cycle, std::size_t queue_depth,
                          std::size_t slab_live, std::size_t slab_capacity)
{
    detail::ThreadRecord &rec = detail::threadRecord();
    GaugeSample sample;
    std::uint64_t origin = detail::registry().enableNanos;
    std::uint64_t now = detail::nowNanos();
    sample.wallNanos = now > origin ? now - origin : 0;
    sample.simCycle = sim_cycle;
    sample.queueDepth = queue_depth;
    sample.slabLive = slab_live;
    sample.slabCapacity = slab_capacity;
    if (rec.gauges.size() < detail::ThreadRecord::kGaugeRing) {
        rec.gauges.push_back(sample);
    } else {
        rec.gauges[rec.gaugeNext] = sample;
        rec.gaugeNext = (rec.gaugeNext + 1) % detail::ThreadRecord::kGaugeRing;
    }
    ++rec.gaugeCount;
    rec.maxQueueDepth = std::max<std::uint64_t>(rec.maxQueueDepth,
                                                queue_depth);
    rec.maxSlabLive = std::max<std::uint64_t>(rec.maxSlabLive, slab_live);
    rec.maxSlabCapacity = std::max<std::uint64_t>(rec.maxSlabCapacity,
                                                  slab_capacity);
}

namespace {

std::uint64_t
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
        return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;
#else
        return static_cast<std::uint64_t>(usage.ru_maxrss);
#endif
    }
#endif
    return 0;
}

} // namespace

ProfileSnapshot
HostProfiler::snapshot() const
{
    ProfileSnapshot snap;
    const detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto &rec : reg.records) {
        ++snap.threads;
        for (std::size_t z = 0; z < kNumZones; ++z) {
            snap.zones[z].selfNanos += rec->zones[z].selfNanos;
            snap.zones[z].totalNanos += rec->zones[z].totalNanos;
            snap.zones[z].hits += rec->zones[z].hits;
        }
        snap.zoneDrops += rec->drops;
        snap.gaugeCount += rec->gaugeCount;
        snap.maxQueueDepth = std::max(snap.maxQueueDepth,
                                      rec->maxQueueDepth);
        snap.maxSlabLive = std::max(snap.maxSlabLive, rec->maxSlabLive);
        snap.maxSlabCapacity = std::max(snap.maxSlabCapacity,
                                        rec->maxSlabCapacity);
    }
    for (std::size_t z = 0; z < kNumZones; ++z)
        snap.attributedNanos += snap.zones[z].selfNanos;
    if (reg.enableNanos) {
        std::uint64_t now = detail::nowNanos();
        snap.wallNanos = now > reg.enableNanos ? now - reg.enableNanos : 0;
    }
    snap.peakRssKb = peakRssKb();
    const ZoneTotals &loop =
        snap.zones[static_cast<std::size_t>(Zone::SimLoop)];
    const ZoneTotals &dispatch =
        snap.zones[static_cast<std::size_t>(Zone::EventDispatch)];
    if (loop.totalNanos > 0) {
        snap.eventsPerSec =
            double(dispatch.hits) * 1e9 / double(loop.totalNanos);
    }
    return snap;
}

void
HostProfiler::gaugeSamples(GaugeSample *out, std::size_t max,
                           std::size_t &count) const
{
    count = 0;
    const detail::Registry &reg = detail::registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto &rec : reg.records) {
        for (const GaugeSample &sample : rec->gauges) {
            if (count >= max)
                break;
            out[count++] = sample;
        }
    }
    std::sort(out, out + count,
              [](const GaugeSample &a, const GaugeSample &b) {
                  if (a.wallNanos != b.wallNanos)
                      return a.wallNanos < b.wallNanos;
                  return a.simCycle < b.simCycle;
              });
}

void
HostProfiler::writeJson(std::ostream &out,
                        const RunManifest *manifest) const
{
    ProfileSnapshot snap = snapshot();
    char buf[256];

    out << "{\n  \"schema\": \"softwalker.hostprof/1\",\n";
    out << "  \"compiled\": " << (kHostProfCompiled ? "true" : "false")
        << ",\n";
    out << "  \"enabled\": " << (enabled() ? "true" : "false") << ",\n";
    if (manifest) {
        out << "  \"manifest\": ";
        manifest->writeJson(out, 2);
        out << ",\n";
    }
    std::snprintf(buf, sizeof(buf),
                  "  \"wall_ns\": %llu,\n  \"attributed_ns\": %llu,\n"
                  "  \"coverage\": %.4f,\n  \"threads\": %u,\n"
                  "  \"zone_drops\": %llu,\n",
                  static_cast<unsigned long long>(snap.wallNanos),
                  static_cast<unsigned long long>(snap.attributedNanos),
                  snap.coverage(), snap.threads,
                  static_cast<unsigned long long>(snap.zoneDrops));
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"events_per_sec\": %.1f,\n  \"peak_rss_kb\": %llu,\n",
                  snap.eventsPerSec,
                  static_cast<unsigned long long>(snap.peakRssKb));
    out << buf;

    out << "  \"gauges\": {\n";
    std::snprintf(buf, sizeof(buf),
                  "    \"queue_depth_max\": %llu,\n"
                  "    \"slab_live_max\": %llu,\n"
                  "    \"slab_capacity_max\": %llu,\n"
                  "    \"checkpoint_bytes\": %llu,\n"
                  "    \"samples_recorded\": %llu,\n",
                  static_cast<unsigned long long>(snap.maxQueueDepth),
                  static_cast<unsigned long long>(snap.maxSlabLive),
                  static_cast<unsigned long long>(snap.maxSlabCapacity),
                  static_cast<unsigned long long>(checkpointBytes()),
                  static_cast<unsigned long long>(snap.gaugeCount));
    out << buf;
    out << "    \"samples\": [";
    static constexpr std::size_t kMaxSamples = 4096;
    std::vector<GaugeSample> samples(kMaxSamples);
    std::size_t n = 0;
    gaugeSamples(samples.data(), kMaxSamples, n);
    for (std::size_t i = 0; i < n; ++i) {
        std::snprintf(
            buf, sizeof(buf),
            "%s\n      {\"wall_ns\": %llu, \"cycle\": %llu, "
            "\"queue_depth\": %llu, \"slab_live\": %llu, "
            "\"slab_capacity\": %llu}",
            i ? "," : "",
            static_cast<unsigned long long>(samples[i].wallNanos),
            static_cast<unsigned long long>(samples[i].simCycle),
            static_cast<unsigned long long>(samples[i].queueDepth),
            static_cast<unsigned long long>(samples[i].slabLive),
            static_cast<unsigned long long>(samples[i].slabCapacity));
        out << buf;
    }
    out << (n ? "\n    ]\n" : "]\n");
    out << "  },\n";

    out << "  \"zones\": [\n";
    for (std::size_t z = 0; z < kNumZones; ++z) {
        std::snprintf(
            buf, sizeof(buf),
            "    {\"zone\": \"%s\", \"self_ns\": %llu, "
            "\"total_ns\": %llu, \"hits\": %llu}%s\n",
            toString(static_cast<Zone>(z)),
            static_cast<unsigned long long>(snap.zones[z].selfNanos),
            static_cast<unsigned long long>(snap.zones[z].totalNanos),
            static_cast<unsigned long long>(snap.zones[z].hits),
            z + 1 < kNumZones ? "," : "");
        out << buf;
    }
    out << "  ]\n}\n";
}

void
HostProfiler::appendTraceEvents(std::ostream &out, bool &need_comma) const
{
    if (!kHostProfCompiled)
        return;
    ProfileSnapshot snap = snapshot();
    char buf[256];
    auto sep = [&]() {
        if (need_comma)
            out << ",\n";
        need_comma = true;
    };

    // Host process metadata: zone spans live on their own pid so viewers
    // show a separate "host" track group next to the simulated timeline.
    sep();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"args\":{\"name\":\"host wall-clock (us)\"}}";

    // One aggregate "X" span per zone, laid end-to-end by self time: the
    // track reads as a wall-clock attribution bar chart.
    std::uint64_t cursor = 0;
    for (std::size_t z = 0; z < kNumZones; ++z) {
        const ZoneTotals &totals = snap.zones[z];
        if (totals.hits == 0)
            continue;
        sep();
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\":\"%s\",\"cat\":\"hostprof\",\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":0,"
            "\"args\":{\"hits\":%llu,\"total_us\":%.3f}}",
            toString(static_cast<Zone>(z)), double(cursor) / 1e3,
            double(totals.selfNanos) / 1e3,
            static_cast<unsigned long long>(totals.hits),
            double(totals.totalNanos) / 1e3);
        out << buf;
        cursor += totals.selfNanos;
    }

    // Gauge counter tracks on the *simulated* timeline (pid 0): queue
    // depth and slab occupancy line up with the walk spans.
    static constexpr std::size_t kMaxSamples = 4096;
    std::vector<GaugeSample> samples(kMaxSamples);
    std::size_t n = 0;
    gaugeSamples(samples.data(), kMaxSamples, n);
    for (std::size_t i = 0; i < n; ++i) {
        sep();
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\":\"host.event_queue\",\"ph\":\"C\",\"ts\":%llu,"
            "\"pid\":0,\"tid\":0,\"args\":{\"queue_depth\":%llu,"
            "\"slab_live\":%llu}}",
            static_cast<unsigned long long>(samples[i].simCycle),
            static_cast<unsigned long long>(samples[i].queueDepth),
            static_cast<unsigned long long>(samples[i].slabLive));
        out << buf;
    }
}

} // namespace prof
} // namespace sw
