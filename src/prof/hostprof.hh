/**
 * @file
 * Host-side self-profiler: SW_PROF scoped zones attribute *wall-clock*
 * time (not simulated cycles) to the simulator's hot components, so the
 * sweep-speedup and checkpoint/sampling work can be judged with evidence
 * about where host time actually goes.
 *
 * The design follows the SW_AUDIT / SW_TRACE mold from src/check and
 * src/obs:
 *
 *  - `-DSOFTWALKER_HOSTPROF=ON` compiles the zones in (the `hostprof`
 *    preset); the default build compiles every SW_PROF macro to
 *    `(void)sizeof(...)` — operands unevaluated, provably zero cost.
 *  - When compiled in, zones record only while the profiler is enabled
 *    (one relaxed atomic load otherwise), so a single binary can compare
 *    profiled and unprofiled runs.
 *  - The profiler only ever *reads* the simulation; it never schedules
 *    events, never touches the Rng, and never advances the clock, so the
 *    simulated timeline — and every RunResult fingerprint — is
 *    bit-identical with the profiler compiled in, enabled, or absent
 *    (tests/integration/test_prof_zero_perturbation.cc holds this down).
 *
 * Zones are accumulated per thread (SweepRunner workers never contend)
 * with an enter/exit stack that computes *self* time: a zone's self time
 * excludes nested zones, so the per-zone self times partition the
 * instrumented wall-clock and sum to the attributed total reported by
 * snapshot().  Thread records are merged on demand; merging sums counts
 * and times and takes maxima of gauges, so the merged hit counts are
 * deterministic across worker counts (the simulation itself is).
 *
 * src/prof is the one sanctioned home for std::chrono::steady_clock in
 * the source tree: the softwalker-wallclock-in-sim check allowlists this
 * directory (and only this directory) for clock reads, so simulation code
 * gets host-time attribution exclusively through these macros.
 */

#ifndef SW_PROF_HOSTPROF_HH
#define SW_PROF_HOSTPROF_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

#ifndef SOFTWALKER_HOSTPROF
#define SOFTWALKER_HOSTPROF 0
#endif

namespace sw {

struct RunManifest;

namespace prof {

/** True when the build compiles the SW_PROF zones in. */
inline constexpr bool kHostProfCompiled = SOFTWALKER_HOSTPROF != 0;

/**
 * Wall-clock attribution targets.  EventDispatch wraps every handler the
 * EventQueue executes, and the component zones nest inside it, so the
 * self-time split tells event-loop overhead, per-component work, and
 * observability overhead apart.
 */
enum class Zone : std::uint8_t
{
    Setup,          ///< workload materialisation + GPU construction
    SimLoop,        ///< EventQueue::run (self = heap/sweep overhead)
    EventDispatch,  ///< one handler invocation (self = uninstrumented work)
    SmExec,         ///< SM fetch/issue/execute scheduling
    TlbLookup,      ///< TranslationEngine TLB lookup / MSHR / fill paths
    PtwWalk,        ///< hardware PTW pool dispatch and walk steps
    PwWarpExec,     ///< SoftWalker PW-Warp batch execution
    CacheDram,      ///< cache hierarchy + DRAM model
    StatsAudit,     ///< auditor sweeps, stat finalisation/reset
    ObsSample,      ///< time-series sampler gauge sweeps
    Report,         ///< result collection + registry capture
    CkptSave,       ///< checkpoint serialisation + write
    CkptRestore,    ///< checkpoint read + state restore
    FfwdWarmup,     ///< functional fast-forward warmup
};

inline constexpr std::size_t kNumZones =
    static_cast<std::size_t>(Zone::FfwdWarmup) + 1;

/** Stable lower-case zone name (JSON keys, trace track names). */
const char *toString(Zone zone);

/** Merged per-zone accumulators. */
struct ZoneTotals
{
    std::uint64_t selfNanos = 0;   ///< excludes nested zones
    std::uint64_t totalNanos = 0;  ///< includes nested zones
    std::uint64_t hits = 0;
};

/** One host-gauge sample (taken every 2^16 executed events). */
struct GaugeSample
{
    std::uint64_t wallNanos = 0;     ///< since the profiler was enabled
    std::uint64_t simCycle = 0;      ///< event-queue clock at the sample
    std::uint64_t queueDepth = 0;    ///< pending events
    std::uint64_t slabLive = 0;      ///< event-slab slots holding handlers
    std::uint64_t slabCapacity = 0;  ///< event-slab high-water mark
};

/**
 * Process-wide checkpoint-I/O byte counter (host gauge): the ckpt library
 * bumps it on every checkpoint encode/decode and the JSON artifact
 * reports it in the gauge table.  Always compiled — it is a relaxed
 * atomic add, never a clock read, so checkpoint accounting works in
 * non-hostprof builds and cannot perturb the simulation.
 */
void addCheckpointBytes(std::uint64_t bytes);
std::uint64_t checkpointBytes();

/** Everything snapshot() merges out of the per-thread records. */
struct ProfileSnapshot
{
    ZoneTotals zones[kNumZones];
    std::uint64_t wallNanos = 0;        ///< enable -> snapshot
    std::uint64_t attributedNanos = 0;  ///< sum of zone self times
    std::uint64_t zoneDrops = 0;        ///< zones lost to stack overflow
    unsigned threads = 0;
    std::uint64_t gaugeCount = 0;       ///< samples taken (ring may drop)
    std::uint64_t maxQueueDepth = 0;
    std::uint64_t maxSlabLive = 0;
    std::uint64_t maxSlabCapacity = 0;
    std::uint64_t peakRssKb = 0;        ///< getrusage ru_maxrss
    double eventsPerSec = 0.0;          ///< dispatch hits / sim-loop time

    /** Fraction of enabled wall-clock the zones account for. */
    double
    coverage() const
    {
        return wallNanos ? double(attributedNanos) / double(wallNanos)
                         : 0.0;
    }
};

namespace detail {

struct ThreadRecord;

/** This thread's record, registered with the profiler on first use. */
ThreadRecord &threadRecord();

/** @return false when the zone stack is full (the zone is dropped). */
bool zoneEnter(ThreadRecord &rec, Zone zone, std::uint64_t start_nanos);
void zoneExit(ThreadRecord &rec, std::uint64_t end_nanos);

/** Monotonic nanoseconds (steady_clock; sanctioned here only). */
std::uint64_t nowNanos();

} // namespace detail

/**
 * Process-wide profiler: owns every thread's record, merges them into
 * ProfileSnapshots, and serialises the JSON profile artifact and the
 * Perfetto host tracks.
 */
class HostProfiler
{
  public:
    static HostProfiler &instance();

    /** Cheapest possible gate for the SW_PROF macros. */
    static bool
    enabled()
    {
        return enabledFlag.load(std::memory_order_relaxed);
    }

    /**
     * Arm / disarm recording.  Arming stamps the wall-clock origin that
     * snapshot() measures total time (and therefore coverage) against.
     */
    void setEnabled(bool on);

    /**
     * Zero every thread record and the wall-clock origin.  Call only
     * while no SW_PROF zone is live on another thread (between sweep
     * runs); records stay allocated so thread-local pointers never
     * dangle.
     */
    void reset();

    /** Merge every thread record.  Call after worker threads joined. */
    ProfileSnapshot snapshot() const;

    /** Gauge samples merged across threads, wall-clock order. */
    void gaugeSamples(GaugeSample *out, std::size_t max,
                      std::size_t &count) const;

    /**
     * Write the JSON profile artifact ("softwalker.hostprof/1"): the
     * manifest (when given), zone table, gauges, coverage.  Valid JSON
     * even when the profiler is compiled out (compiled:false).
     */
    void writeJson(std::ostream &out,
                   const RunManifest *manifest = nullptr) const;

    /**
     * Append Chrome trace_event objects for the host-side view to a
     * trace being written by TranslationTracer::writeTraceJson: zone
     * spans as "X" events on a dedicated host pid (ts in wall-clock
     * microseconds) and gauge samples as "C" counter tracks on the
     * simulated timeline (ts in cycles).  @p need_comma tracks the
     * caller's separator state.
     */
    void appendTraceEvents(std::ostream &out, bool &need_comma) const;

    /** Record one host-gauge sample on the calling thread. */
    static void gaugeSample(std::uint64_t sim_cycle,
                            std::size_t queue_depth, std::size_t slab_live,
                            std::size_t slab_capacity);

  private:
    HostProfiler() = default;

    friend struct detail::ThreadRecord;
    friend detail::ThreadRecord &detail::threadRecord();

    inline static std::atomic<bool> enabledFlag{false};
};

/**
 * RAII zone.  Construction checks the enable flag once; a disabled
 * profiler costs one relaxed load and no clock read.
 */
class ScopedZone
{
  public:
    explicit ScopedZone(Zone zone)
    {
#if SOFTWALKER_HOSTPROF
        if (HostProfiler::enabled()) {
            detail::ThreadRecord &record = detail::threadRecord();
            if (detail::zoneEnter(record, zone, detail::nowNanos()))
                rec = &record;
        }
#else
        (void)sizeof(zone);
#endif
    }

    ~ScopedZone()
    {
#if SOFTWALKER_HOSTPROF
        if (rec)
            detail::zoneExit(*rec, detail::nowNanos());
#endif
    }

    ScopedZone(const ScopedZone &) = delete;
    ScopedZone &operator=(const ScopedZone &) = delete;

#if SOFTWALKER_HOSTPROF
  private:
    detail::ThreadRecord *rec = nullptr;
#endif
};

} // namespace prof
} // namespace sw

#define SW_PROF_CONCAT2(a, b) a##b
#define SW_PROF_CONCAT(a, b) SW_PROF_CONCAT2(a, b)

#if SOFTWALKER_HOSTPROF
/** Attribute the rest of the enclosing scope's wall-clock to @p zone. */
#define SW_PROF_SCOPE(zone)                                                 \
    ::sw::prof::ScopedZone SW_PROF_CONCAT(swProfZone_, __LINE__)(zone)
/** Sample the host gauges (event-queue depth, slab occupancy). */
#define SW_PROF_GAUGES(cycle, depth, slab_live, slab_cap)                   \
    do {                                                                    \
        if (::sw::prof::HostProfiler::enabled()) {                          \
            ::sw::prof::HostProfiler::gaugeSample(cycle, depth, slab_live,  \
                                                  slab_cap);                \
        }                                                                   \
    } while (0)
#else
#define SW_PROF_SCOPE(zone)                                                 \
    do {                                                                    \
        (void)sizeof(zone);                                                 \
    } while (0)
#define SW_PROF_GAUGES(cycle, depth, slab_live, slab_cap)                   \
    do {                                                                    \
        (void)sizeof(cycle);                                                \
        (void)sizeof(depth);                                                \
        (void)sizeof(slab_live);                                            \
        (void)sizeof(slab_cap);                                             \
    } while (0)
#endif

#endif // SW_PROF_HOSTPROF_HH
