/**
 * @file
 * RunManifest: provenance block embedded in every metrics / bench /
 * profile JSON artifact so numbers stay interpretable across hosts and
 * commits.  BENCH_*.json without a manifest is a number with no units:
 * the regression gate (tools/swbench) refuses to guess whether a 2x
 * delta is a code change or a laptop-vs-CI-runner change, so every
 * artifact carries the build and host it came from.
 *
 * Build facts (git describe, compiler, flags, build type, feature
 * toggles) are baked in at configure time via SW_BUILD_* definitions on
 * the sw_prof target; host facts (hostname, hardware_concurrency,
 * SW_JOBS) are read at collect() time; per-run facts (config digest,
 * benchmark, limits) are filled in by the caller when known.
 *
 * Schema ("softwalker.manifest/1") is documented in docs/PROFILING.md.
 */

#ifndef SW_PROF_RUN_MANIFEST_HH
#define SW_PROF_RUN_MANIFEST_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace sw {

struct RunManifest
{
    // ---- Build (configure-time constants) ----------------------------
    std::string gitDescribe;    ///< `git describe --always --dirty`
    std::string compiler;       ///< id + version
    std::string flags;          ///< CXX flags incl. build-type flags
    std::string buildType;      ///< CMAKE_BUILD_TYPE
    bool hostprofCompiled = false;
    bool auditCompiled = false;
    bool tracingCompiled = true;

    // ---- Host (collect()-time) ---------------------------------------
    std::string hostname;
    unsigned hardwareConcurrency = 0;
    std::string swJobs;         ///< SW_JOBS env var, empty when unset

    // ---- Run (caller-provided, 0/empty when not applicable) ----------
    std::uint64_t configDigest = 0;  ///< trace_format configDigest(cfg)
    std::string benchmark;
    std::uint64_t warpInstrQuota = 0;
    std::uint64_t warmupInstrs = 0;
    std::uint64_t maxCycles = 0;

    /** Build + host facts; run facts left for the caller. */
    static RunManifest collect();

    /**
     * Write the manifest as one JSON object, indented for embedding:
     * every line after the first is prefixed with @p indent spaces.
     * No trailing newline.
     */
    void writeJson(std::ostream &out, int indent = 0) const;

    /** writeJson into a string (convenience for fprintf-style writers). */
    std::string toJson(int indent = 0) const;
};

} // namespace sw

#endif // SW_PROF_RUN_MANIFEST_HH
