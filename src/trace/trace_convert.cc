#include "trace/trace_convert.hh"

#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace sw {

namespace {

std::uint64_t
parseU64(const std::string &token, const std::string &context, int line)
{
    std::size_t used = 0;
    std::uint64_t value = 0;
    try {
        value = std::stoull(token, &used, 0);   // base 0: 0x... accepted
    } catch (...) {
        used = 0;
    }
    if (used != token.size())
        fatal("%s:%d: '%s' is not a number", context.c_str(), line,
              token.c_str());
    return value;
}

} // namespace

TraceFile
parseTextTrace(std::istream &in, const std::string &context)
{
    TraceFile trace;
    TraceStream *current = nullptr;
    bool saw_signature = false;
    bool saw_name = false;
    std::string line;
    int lineno = 0;

    while (std::getline(in, line)) {
        ++lineno;
        if (std::size_t hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string keyword;
        if (!(fields >> keyword))
            continue;   // blank / comment-only line

        auto rest = [&](const char *what, std::size_t min_count) {
            std::vector<std::string> tokens;
            std::string token;
            while (fields >> token)
                tokens.push_back(token);
            if (tokens.size() < min_count)
                fatal("%s:%d: '%s' needs at least %zu argument(s) (%s)",
                      context.c_str(), lineno, keyword.c_str(), min_count,
                      what);
            return tokens;
        };

        if (!saw_signature) {
            if (keyword != "swtrace-text")
                fatal("%s:%d: not a text trace (expected the "
                      "'swtrace-text 1' signature, got '%s')",
                      context.c_str(), lineno, keyword.c_str());
            std::vector<std::string> args =
                rest("format version", 1);
            std::uint64_t version = parseU64(args[0], context, lineno);
            if (version != 1)
                fatal("%s:%d: unsupported text trace version %llu",
                      context.c_str(), lineno,
                      (unsigned long long)version);
            saw_signature = true;
        } else if (keyword == "name") {
            trace.header.name = rest("workload name", 1)[0];
            saw_name = true;
        } else if (keyword == "footprint") {
            trace.header.footprintBytes =
                parseU64(rest("bytes", 1)[0], context, lineno);
        } else if (keyword == "irregular") {
            trace.header.irregular =
                parseU64(rest("0 or 1", 1)[0], context, lineno) != 0;
        } else if (keyword == "digest") {
            trace.header.configDigest =
                parseU64(rest("u64", 1)[0], context, lineno);
        } else if (keyword == "limits") {
            std::vector<std::string> args =
                rest("quota warmup maxcycles maxwarps", 4);
            trace.header.limits.warpInstrQuota =
                parseU64(args[0], context, lineno);
            trace.header.limits.warmupInstrs =
                parseU64(args[1], context, lineno);
            trace.header.limits.maxCycles =
                parseU64(args[2], context, lineno);
            trace.header.limits.maxActiveWarps =
                parseU64(args[3], context, lineno);
        } else if (keyword == "stream") {
            std::vector<std::string> args = rest("sm warp [asid]", 2);
            if (args.size() > 3)
                fatal("%s:%d: 'stream' takes sm, warp, and an optional "
                      "asid; got %zu arguments", context.c_str(), lineno,
                      args.size());
            TraceStream stream;
            stream.sm = SmId(parseU64(args[0], context, lineno));
            stream.warp = WarpId(parseU64(args[1], context, lineno));
            if (args.size() == 3)
                stream.asid = Asid(parseU64(args[2], context, lineno));
            for (const TraceStream &existing : trace.streams)
                if (existing.sm == stream.sm &&
                    existing.warp == stream.warp)
                    fatal("%s:%d: duplicate stream (%u, %u)",
                          context.c_str(), lineno, stream.sm,
                          stream.warp);
            trace.streams.push_back(std::move(stream));
            current = &trace.streams.back();
        } else if (keyword == "instr") {
            if (!current)
                fatal("%s:%d: 'instr' before any 'stream' header",
                      context.c_str(), lineno);
            std::vector<std::string> args =
                rest("computeGap r|w addr...", 2);
            WarpInstr instr;
            instr.computeGap =
                std::uint32_t(parseU64(args[0], context, lineno));
            if (args[1] == "r") {
                instr.write = false;
            } else if (args[1] == "w") {
                instr.write = true;
            } else {
                fatal("%s:%d: access kind must be 'r' or 'w', got '%s'",
                      context.c_str(), lineno, args[1].c_str());
            }
            std::size_t lanes = args.size() - 2;
            if (lanes > 32)
                fatal("%s:%d: %zu lane addresses (max 32)",
                      context.c_str(), lineno, lanes);
            instr.activeLanes = std::uint32_t(lanes);
            for (std::size_t lane = 0; lane < lanes; ++lane)
                instr.addrs[lane] =
                    parseU64(args[lane + 2], context, lineno);
            current->instrs.push_back(instr);
        } else {
            fatal("%s:%d: unknown keyword '%s'", context.c_str(), lineno,
                  keyword.c_str());
        }
    }
    if (!saw_signature)
        fatal("%s: empty input (expected the 'swtrace-text 1' signature)",
              context.c_str());
    if (!saw_name)
        fatal("%s: missing 'name' header", context.c_str());
    return trace;
}

std::uint64_t
convertTextTrace(const std::string &text_path,
                 const std::string &swtrace_path)
{
    std::ifstream in(text_path);
    if (!in)
        fatal("cannot open text trace '%s' for reading",
              text_path.c_str());
    TraceFile trace = parseTextTrace(in, text_path);
    writeTraceFile(swtrace_path, trace);
    return trace.totalInstrs();
}

} // namespace sw
