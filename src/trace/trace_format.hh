/**
 * @file
 * The `.swtrace` on-disk page-access trace format.
 *
 * A trace decouples workload capture from memory-system modelling the way
 * Accel-Sim's trace-driven frontend does for the paper's evaluation: the
 * per-warp global-memory instruction stream is recorded once and can then
 * be replayed through any translation configuration — or ingested from an
 * entirely different simulator via the text converter (trace_convert.hh).
 *
 * Layout (little-endian; see docs/TRACES.md for the normative spec):
 *
 *   bytes 0..7   magic "SWTRACE\0"
 *   bytes 8..11  u32 format version (kTraceVersion)
 *   bytes 12..19 u64 config digest (0 = unknown origin, check skipped)
 *   then varint-coded:
 *     workload name (varint length + bytes)
 *     footprint bytes (varint)
 *     irregular flag (u8)
 *     recorded limits: quota, warmup, max cycles, max active warps (varints)
 *     stream count (varint)
 *     per stream: sm (varint), warp (varint),
 *                 asid (varint; version >= 3 only, older traces read as 0),
 *                 instruction count (varint), then that many records
 *   version >= 2 only:
 *     fetch-order length (varint; 0 = not recorded), then that many
 *     varint stream indexes — the global order in which the recorded run
 *     fetched one instruction from each stream.  Functional fast-forward
 *     replays this order so per-warp positions stay time-coherent: the
 *     cross-warp page sharing that gives a warm machine its TLB hits
 *     lives at the recorded relative warp offsets, not at equal indexes
 *     (docs/TRACES.md §Fetch order).
 *
 * Record encoding (one WarpInstr):
 *   varint computeGap
 *   u8     (activeLanes & 0x3F) | (write ? 0x40 : 0)  — 0..32 lanes;
 *          0 is the idle instruction a drained replay emits
 *   zigzag-varint delta of lane 0's address vs. the previous record's
 *     lane 0 (per stream, starting from 0), then zigzag-varint deltas of
 *     each further lane vs. the lane before it.  Lane addresses within a
 *     warp are near-monotone for coalesced workloads and the per-stream
 *     lane-0 chain is near-stationary for windowed ones, so deltas stay
 *     short.
 *
 * Every malformed-input path funnels through fatal() with the offending
 * file and offset — a broken trace must produce a diagnostic, never a
 * crash or a silent misreplay.
 */

#ifndef SW_TRACE_TRACE_FORMAT_HH
#define SW_TRACE_TRACE_FORMAT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "workload/workload.hh"

namespace sw {

/** First eight bytes of every .swtrace file. */
inline constexpr char kTraceMagic[8] =
    {'S', 'W', 'T', 'R', 'A', 'C', 'E', '\0'};

/**
 * Current format version; readers accept 1..kTraceVersion and reject
 * anything newer.  Version 2 added the global fetch-order stream;
 * version 3 added the per-stream ASID tag (multi-tenant replay).
 */
inline constexpr std::uint32_t kTraceVersion = 3;

/**
 * Digest placeholder for traces converted from external sources: replay
 * cannot verify the recording configuration, so the check is skipped with
 * a warning instead.
 */
inline constexpr std::uint64_t kUnknownConfigDigest = 0;

/**
 * Recorded stopping conditions (mirrors Gpu::RunLimits without depending
 * on the GPU library).  All-zero means "not recorded": replay falls back
 * to the harness defaults.
 */
struct TraceLimits
{
    std::uint64_t warpInstrQuota = 0;
    std::uint64_t warmupInstrs = 0;
    std::uint64_t maxCycles = 0;
    std::uint64_t maxActiveWarps = 0;
};

/** Everything in a trace file ahead of the per-stream records. */
struct TraceHeader
{
    std::uint64_t configDigest = kUnknownConfigDigest;
    std::string name;
    std::uint64_t footprintBytes = 0;
    bool irregular = false;
    TraceLimits limits;
};

/** One recorded per-(sm, warp) instruction stream. */
struct TraceStream
{
    SmId sm = 0;
    WarpId warp = 0;
    /**
     * Address space the stream was recorded under.  Traces predating
     * version 3 decode as ASID 0 (single-tenant); replay re-derives the
     * effective ASID from the machine's MIG partitioning, so the tag is
     * provenance, not an override.
     */
    Asid asid = 0;
    std::vector<WarpInstr> instrs;
};

/** A fully decoded trace: header + streams sorted by (sm, warp). */
struct TraceFile
{
    TraceHeader header;
    std::vector<TraceStream> streams;
    /**
     * Stream index (into `streams`) of each fetch, in the global order
     * the recording run performed them.  Either empty (version-1 traces,
     * converted traces) or exactly totalInstrs() entries covering every
     * stream's records.  Empty is legal everywhere; fast-forward then
     * falls back to round-robin stream advance, which loses the recorded
     * cross-warp phase relationships.
     */
    std::vector<std::uint32_t> fetchOrder;

    std::uint64_t
    totalInstrs() const
    {
        std::uint64_t n = 0;
        for (const TraceStream &stream : streams)
            n += stream.instrs.size();
        return n;
    }
};

/**
 * Digest of every simulation-relevant GpuConfig field (FNV-1a over a
 * canonical serialisation).  Replaying a trace under a different
 * configuration would silently model a machine the stream was never
 * generated for, so the digest is checked before replay.  The audit sweep
 * interval is excluded: conservation audits ride the non-perturbing
 * periodic-check hook and cannot change simulated behaviour.
 */
std::uint64_t configDigest(const GpuConfig &cfg);

// ---- Primitive encoders (exposed for tests and the converter) -----------

/** Append an unsigned LEB128 varint. */
void putVarint(std::vector<std::uint8_t> &out, std::uint64_t value);

/** Append a zigzag-encoded signed delta. */
void putSvarint(std::vector<std::uint8_t> &out, std::int64_t value);

/**
 * Bounds-checked cursor over an encoded trace; every read past the end is
 * fatal() with @p context (normally the file path) and the byte offset.
 */
class TraceReader
{
  public:
    TraceReader(const std::uint8_t *data, std::size_t size,
                std::string context)
        : data_(data), size_(size), context_(std::move(context))
    {
    }

    std::size_t offset() const { return off; }
    std::size_t remaining() const { return size_ - off; }

    std::uint8_t u8();
    std::uint32_t u32le();
    std::uint64_t u64le();
    std::uint64_t varint();
    std::int64_t svarint();
    /** Read @p n raw bytes into a string. */
    std::string bytes(std::size_t n);

  private:
    [[noreturn]] void truncated(const char *what) const;

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t off = 0;
    std::string context_;
};

// ---- Whole-file serialisation -------------------------------------------

/** Encode @p trace into the binary format. */
std::vector<std::uint8_t> encodeTrace(const TraceFile &trace);

/**
 * Decode a binary trace; fatal() with a diagnostic naming @p context on
 * any malformed input (bad magic, unsupported version, truncation,
 * corrupt record).
 */
TraceFile decodeTrace(const std::uint8_t *data, std::size_t size,
                      const std::string &context);

/** Write @p trace to @p path; fatal() on I/O failure. */
void writeTraceFile(const std::string &path, const TraceFile &trace);

/** Read and decode @p path; fatal() on I/O failure or malformed input. */
TraceFile readTraceFile(const std::string &path);

} // namespace sw

#endif // SW_TRACE_TRACE_FORMAT_HH
