/**
 * @file
 * Text-to-`.swtrace` converter: the ingestion point for traces produced
 * by other simulators or profilers.
 *
 * Input is a line-oriented text format (normative spec in
 * docs/TRACES.md):
 *
 *   swtrace-text 1
 *   name bfs
 *   footprint 1463812096
 *   irregular 1
 *   # optional: digest <u64>   (0/absent = unknown origin, check skipped)
 *   # optional: limits <quota> <warmup> <maxcycles> <maxwarps>
 *   stream <sm> <warp> [<asid>]
 *   instr <computeGap> <r|w> <addr> [<addr> ...]
 *   ...
 *
 * Addresses accept decimal or 0x-prefixed hex.  `#` starts a comment;
 * blank lines are ignored.  Any malformed line is fatal() with its line
 * number — never a crash, never a silently wrong trace.
 */

#ifndef SW_TRACE_TRACE_CONVERT_HH
#define SW_TRACE_TRACE_CONVERT_HH

#include <iosfwd>
#include <string>

#include "trace/trace_format.hh"

namespace sw {

/** Parse the text format from @p in; @p context names it in errors. */
TraceFile parseTextTrace(std::istream &in, const std::string &context);

/**
 * Convert text trace @p text_path to binary @p swtrace_path.
 * @return the total number of instructions converted.
 */
std::uint64_t convertTextTrace(const std::string &text_path,
                               const std::string &swtrace_path);

} // namespace sw

#endif // SW_TRACE_TRACE_CONVERT_HH
