#include "trace/trace_format.hh"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "sim/logging.hh"

namespace sw {

namespace {

/** FNV-1a 64-bit accumulator. */
class Digest
{
  public:
    void
    u64(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i) {
            state ^= (value >> (8 * i)) & 0xFF;
            state *= 0x100000001b3ULL;
        }
    }

    void f64(double value)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(value));
        std::memcpy(&bits, &value, sizeof(bits));
        u64(bits);
    }

    std::uint64_t take() const { return state; }

  private:
    std::uint64_t state = 0xcbf29ce484222325ULL;
};

} // namespace

std::uint64_t
configDigest(const GpuConfig &cfg)
{
    Digest d;
    // Field order is part of the format: changing it (or the field set)
    // requires a kTraceVersion bump.
    d.u64(cfg.numSms);
    d.u64(cfg.maxWarpsPerSm);
    d.u64(cfg.warpSize);
    d.f64(cfg.clockGhz);
    d.u64(cfg.l1TlbEntries);
    d.u64(cfg.l1TlbLatency);
    d.u64(cfg.l1TlbMshrs);
    d.u64(cfg.l1TlbMergesPerMshr);
    d.u64(cfg.l2TlbEntries);
    d.u64(cfg.l2TlbWays);
    d.u64(cfg.l2TlbLatency);
    d.u64(cfg.l2TlbMshrs);
    d.u64(cfg.l2TlbMergesPerMshr);
    d.u64(cfg.l1dBytes);
    d.u64(cfg.l1dLatency);
    d.u64(cfg.l1dWays);
    d.u64(cfg.l2dBytes);
    d.u64(cfg.l2dLatency);
    d.u64(cfg.l2dWays);
    d.u64(cfg.lineBytes);
    d.u64(cfg.sectorBytes);
    d.u64(cfg.l1dMshrs);
    d.u64(cfg.l2dMshrs);
    d.u64(cfg.dramChannels);
    d.u64(cfg.dramLatency);
    d.u64(cfg.dramCyclesPerSector);
    d.u64(cfg.pageBytes);
    d.u64(std::uint64_t(cfg.pageTableKind));
    d.u64(cfg.pwcEntries);
    d.u64(cfg.pwcLatency);
    d.u64(cfg.numPtws);
    d.u64(cfg.pwbEntries);
    d.u64(cfg.pwbPorts);
    d.u64(cfg.nhaCoalescing ? 1 : 0);
    d.u64(std::uint64_t(cfg.mode));
    d.u64(cfg.pwWarpThreads);
    d.u64(cfg.softPwbEntries);
    d.u64(cfg.inTlbMshrMax);
    d.u64(std::uint64_t(cfg.distributorPolicy));
    d.u64(cfg.commLatency);
    d.u64(cfg.fixedPtAccessLatency);
    d.u64(cfg.rngSeed);
    // Tenant layout guard: appended only when any multi-tenancy knob moves
    // off its default, so digests of pre-existing single-tenant recordings
    // (including the committed example traces) are unchanged while every
    // multi-tenant trace/checkpoint is pinned to its exact tenant layout.
    if (cfg.numTenants != 1 || cfg.migPartitioning ||
        cfg.l2SubEntries != 1 || cfg.l2SubEntrySharing ||
        cfg.pwArbitration != PwArbitration::Demand) {
        d.u64(cfg.numTenants);
        d.u64(cfg.migPartitioning ? 1 : 0);
        d.u64(cfg.l2SubEntries);
        d.u64(cfg.l2SubEntrySharing ? 1 : 0);
        d.u64(std::uint64_t(cfg.pwArbitration));
    }
    // cfg.auditIntervalCycles deliberately excluded: audit sweeps ride the
    // non-perturbing periodic-check hook and cannot change the timeline.
    std::uint64_t digest = d.take();
    // 0 is reserved for "unknown origin" (converted traces).
    return digest == kUnknownConfigDigest ? 1 : digest;
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(std::uint8_t(value) | 0x80);
        value >>= 7;
    }
    out.push_back(std::uint8_t(value));
}

void
putSvarint(std::vector<std::uint8_t> &out, std::int64_t value)
{
    // Zigzag: small magnitudes of either sign stay short.
    putVarint(out, (std::uint64_t(value) << 1) ^
                       std::uint64_t(value >> 63));
}

void
TraceReader::truncated(const char *what) const
{
    fatal("truncated trace '%s': unexpected end of file reading %s at "
          "offset %zu", context_.c_str(), what, off);
}

std::uint8_t
TraceReader::u8()
{
    if (off + 1 > size_)
        truncated("a byte");
    return data_[off++];
}

std::uint32_t
TraceReader::u32le()
{
    if (off + 4 > size_)
        truncated("a 32-bit word");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= std::uint32_t(data_[off + std::size_t(i)]) << (8 * i);
    off += 4;
    return value;
}

std::uint64_t
TraceReader::u64le()
{
    if (off + 8 > size_)
        truncated("a 64-bit word");
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= std::uint64_t(data_[off + std::size_t(i)]) << (8 * i);
    off += 8;
    return value;
}

std::uint64_t
TraceReader::varint()
{
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        if (off >= size_)
            truncated("a varint");
        std::uint8_t byte = data_[off++];
        value |= std::uint64_t(byte & 0x7F) << shift;
        if (!(byte & 0x80))
            return value;
    }
    fatal("corrupt trace '%s': varint longer than 10 bytes at offset %zu",
          context_.c_str(), off);
}

std::int64_t
TraceReader::svarint()
{
    std::uint64_t raw = varint();
    return std::int64_t(raw >> 1) ^ -std::int64_t(raw & 1);
}

std::string
TraceReader::bytes(std::size_t n)
{
    if (n > size_ - off || off > size_)
        truncated("a byte string");
    std::string out(reinterpret_cast<const char *>(data_ + off), n);
    off += n;
    return out;
}

std::vector<std::uint8_t>
encodeTrace(const TraceFile &trace)
{
    std::vector<std::uint8_t> out;
    // Rough lower bound: fixed header plus a few bytes per record.
    out.reserve(64 + trace.totalInstrs() * 4);
    // Byte-at-a-time rather than a range insert: GCC 12 raises spurious
    // -Wstringop-overflow warnings on memmove-style inserts here.
    for (char c : kTraceMagic)
        out.push_back(std::uint8_t(c));
    for (int i = 0; i < 4; ++i)
        out.push_back(std::uint8_t(kTraceVersion >> (8 * i)));
    for (int i = 0; i < 8; ++i)
        out.push_back(std::uint8_t(trace.header.configDigest >> (8 * i)));

    putVarint(out, trace.header.name.size());
    out.insert(out.end(), trace.header.name.begin(),
               trace.header.name.end());
    putVarint(out, trace.header.footprintBytes);
    out.push_back(trace.header.irregular ? 1 : 0);
    putVarint(out, trace.header.limits.warpInstrQuota);
    putVarint(out, trace.header.limits.warmupInstrs);
    putVarint(out, trace.header.limits.maxCycles);
    putVarint(out, trace.header.limits.maxActiveWarps);

    putVarint(out, trace.streams.size());
    for (const TraceStream &stream : trace.streams) {
        putVarint(out, stream.sm);
        putVarint(out, stream.warp);
        putVarint(out, stream.asid);
        putVarint(out, stream.instrs.size());
        VirtAddr prev_lane0 = 0;
        for (const WarpInstr &instr : stream.instrs) {
            putVarint(out, instr.computeGap);
            // 0 lanes is legal: it is the idle instruction a drained
            // replay emits, so re-recording a replay stays writable.
            SW_ASSERT(instr.activeLanes <= 32,
                      "recording an instruction with %u active lanes",
                      instr.activeLanes);
            out.push_back(std::uint8_t(instr.activeLanes & 0x3F) |
                          (instr.write ? 0x40 : 0));
            if (instr.activeLanes > 0) {
                putSvarint(out, std::int64_t(instr.addrs[0] - prev_lane0));
                for (std::uint32_t lane = 1; lane < instr.activeLanes;
                     ++lane)
                    putSvarint(out, std::int64_t(instr.addrs[lane] -
                                                 instr.addrs[lane - 1]));
                prev_lane0 = instr.addrs[0];
            }
        }
    }

    SW_ASSERT(trace.fetchOrder.empty() ||
              trace.fetchOrder.size() == trace.totalInstrs(),
              "fetch order covers %zu of %llu recorded instructions",
              trace.fetchOrder.size(),
              (unsigned long long)trace.totalInstrs());
    putVarint(out, trace.fetchOrder.size());
    for (std::uint32_t stream_index : trace.fetchOrder)
        putVarint(out, stream_index);
    return out;
}

TraceFile
decodeTrace(const std::uint8_t *data, std::size_t size,
            const std::string &context)
{
    TraceReader reader(data, size, context);
    if (size < sizeof(kTraceMagic))
        fatal("truncated trace '%s': %zu bytes is shorter than the magic",
              context.c_str(), size);
    std::string magic = reader.bytes(sizeof(kTraceMagic));
    if (std::memcmp(magic.data(), kTraceMagic, sizeof(kTraceMagic)) != 0)
        fatal("'%s' is not a SoftWalker trace (bad magic)",
              context.c_str());
    std::uint32_t version = reader.u32le();
    if (version == 0 || version > kTraceVersion)
        fatal("trace '%s' has unsupported format version %u (this build "
              "reads up to version %u)", context.c_str(), version,
              kTraceVersion);

    TraceFile trace;
    trace.header.configDigest = reader.u64le();
    trace.header.name = reader.bytes(reader.varint());
    trace.header.footprintBytes = reader.varint();
    trace.header.irregular = reader.u8() != 0;
    trace.header.limits.warpInstrQuota = reader.varint();
    trace.header.limits.warmupInstrs = reader.varint();
    trace.header.limits.maxCycles = reader.varint();
    trace.header.limits.maxActiveWarps = reader.varint();

    std::uint64_t stream_count = reader.varint();
    trace.streams.reserve(stream_count);
    for (std::uint64_t s = 0; s < stream_count; ++s) {
        TraceStream stream;
        stream.sm = SmId(reader.varint());
        stream.warp = WarpId(reader.varint());
        // Pre-multi-tenant traces carry no ASID tag; they decode as the
        // single-tenant address space.
        stream.asid = version >= 3 ? Asid(reader.varint()) : 0;
        std::uint64_t count = reader.varint();
        // A corrupt count must not drive a huge allocation: each record
        // is at least 3 bytes on disk.
        if (count > reader.remaining())
            fatal("corrupt trace '%s': stream (%u, %u) claims %llu "
                  "records but only %zu bytes remain", context.c_str(),
                  stream.sm, stream.warp, (unsigned long long)count,
                  reader.remaining());
        stream.instrs.reserve(count);
        VirtAddr prev_lane0 = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
            WarpInstr instr;
            instr.computeGap = std::uint32_t(reader.varint());
            std::uint8_t packed = reader.u8();
            instr.activeLanes = packed & 0x3F;
            instr.write = (packed & 0x40) != 0;
            if (instr.activeLanes > 32)
                fatal("corrupt trace '%s': record %llu of stream "
                      "(%u, %u) has %u active lanes (offset %zu)",
                      context.c_str(), (unsigned long long)i, stream.sm,
                      stream.warp, instr.activeLanes,
                      reader.offset());
            if (instr.activeLanes > 0) {
                instr.addrs[0] =
                    prev_lane0 + VirtAddr(reader.svarint());
                for (std::uint32_t lane = 1; lane < instr.activeLanes;
                     ++lane)
                    instr.addrs[lane] = instr.addrs[lane - 1] +
                                        VirtAddr(reader.svarint());
                prev_lane0 = instr.addrs[0];
            }
            stream.instrs.push_back(instr);
        }
        trace.streams.push_back(std::move(stream));
    }

    if (version >= 2) {
        std::uint64_t order_count = reader.varint();
        // Each entry is at least one byte on disk.
        if (order_count > reader.remaining())
            fatal("corrupt trace '%s': fetch order claims %llu entries "
                  "but only %zu bytes remain", context.c_str(),
                  (unsigned long long)order_count, reader.remaining());
        if (order_count != 0 && order_count != trace.totalInstrs())
            fatal("corrupt trace '%s': fetch order has %llu entries for "
                  "%llu recorded instructions", context.c_str(),
                  (unsigned long long)order_count,
                  (unsigned long long)trace.totalInstrs());
        std::vector<std::uint64_t> occupancy(trace.streams.size(), 0);
        trace.fetchOrder.reserve(order_count);
        for (std::uint64_t i = 0; i < order_count; ++i) {
            std::uint64_t stream_index = reader.varint();
            if (stream_index >= trace.streams.size())
                fatal("corrupt trace '%s': fetch-order entry %llu names "
                      "stream %llu of %zu (offset %zu)", context.c_str(),
                      (unsigned long long)i,
                      (unsigned long long)stream_index,
                      trace.streams.size(), reader.offset());
            std::size_t idx = std::size_t(stream_index);
            if (++occupancy[idx] > trace.streams[idx].instrs.size())
                fatal("corrupt trace '%s': fetch order visits stream "
                      "(%u, %u) more often than its %zu records "
                      "(offset %zu)", context.c_str(),
                      trace.streams[idx].sm, trace.streams[idx].warp,
                      trace.streams[idx].instrs.size(), reader.offset());
            trace.fetchOrder.push_back(std::uint32_t(stream_index));
        }
    }

    if (reader.remaining() != 0)
        fatal("corrupt trace '%s': %zu trailing bytes after the last "
              "stream", context.c_str(), reader.remaining());
    return trace;
}

void
writeTraceFile(const std::string &path, const TraceFile &trace)
{
    std::vector<std::uint8_t> bytes = encodeTrace(trace);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open trace '%s' for writing", path.c_str());
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
    out.flush();
    if (!out)
        fatal("short write to trace '%s'", path.c_str());
}

TraceFile
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        fatal("cannot open trace '%s' for reading", path.c_str());
    std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    if (size > 0)
        in.read(reinterpret_cast<char *>(bytes.data()), size);
    if (!in)
        fatal("cannot read trace '%s'", path.c_str());
    return decodeTrace(bytes.data(), bytes.size(), path);
}

} // namespace sw
