/**
 * @file
 * TraceRecorder: a transparent Workload wrapper that captures the
 * per-(sm, warp) instruction stream it forwards.
 *
 * The recorder sits between the GPU and any workload — synthetic
 * generator, replayed trace, user-defined — and buffers every WarpInstr
 * it hands out.  After the run, writeFile() serialises the buffered
 * streams together with the configuration digest and the limits the run
 * used, producing a `.swtrace` whose replay reproduces the run
 * field-identically (see docs/TRACES.md, determinism contract).
 */

#ifndef SW_TRACE_TRACE_RECORDER_HH
#define SW_TRACE_TRACE_RECORDER_HH

#include <map>
#include <memory>
#include <vector>

#include "trace/trace_format.hh"
#include "workload/workload.hh"

namespace sw {

/** Records the stream of a wrapped workload; behaviour is unchanged. */
class TraceRecorder : public Workload
{
  public:
    explicit TraceRecorder(std::unique_ptr<Workload> inner);

    WarpInstr next(SmId sm, WarpId warp, Rng &rng) override;
    std::uint64_t footprintBytes() const override;
    std::string name() const override;
    bool irregular() const override;

    /** Instructions captured so far, across all streams. */
    std::uint64_t recordedInstrs() const { return recorded; }

    /** Distinct (sm, warp) streams captured so far. */
    std::size_t numStreams() const { return streams.size(); }

    /** Snapshot the capture as an in-memory TraceFile. */
    TraceFile snapshot(const GpuConfig &cfg,
                       const TraceLimits &limits) const;

    /**
     * Serialise the capture to @p path.  @p cfg stamps the config digest
     * the replayer verifies; @p limits records the stopping conditions so
     * a bare replay reruns exactly the captured region.
     */
    void writeFile(const std::string &path, const GpuConfig &cfg,
                   const TraceLimits &limits) const;

    Workload &inner() { return *inner_; }

  private:
    std::unique_ptr<Workload> inner_;
    /** Keyed by (sm << 32 | warp): deterministic file order for free. */
    std::map<std::uint64_t, std::vector<WarpInstr>> streams;
    /**
     * Stream key of every fetch in global issue order; snapshot() maps
     * keys to stream indexes to fill TraceFile::fetchOrder (the v2
     * fetch-order section fast-forward replays for time-coherent warp
     * positions).
     */
    std::vector<std::uint64_t> fetchKeys;
    std::uint64_t recorded = 0;
};

} // namespace sw

#endif // SW_TRACE_TRACE_RECORDER_HH
