#include "trace/trace_workload.hh"

#include <utility>

#include "sim/logging.hh"
#include "workload/benchmarks.hh"

namespace sw {

const char *
toString(TraceEndPolicy policy)
{
    switch (policy) {
      case TraceEndPolicy::Drain:
        return "drain";
      case TraceEndPolicy::Loop:
        return "loop";
    }
    return "?";
}

TraceWorkload::TraceWorkload(const std::string &path,
                             TraceEndPolicy end_policy)
    : TraceWorkload(readTraceFile(path), path, end_policy)
{
}

TraceWorkload::TraceWorkload(TraceFile trace, std::string origin_label,
                             TraceEndPolicy end_policy)
    : trace_(std::move(trace)), origin(std::move(origin_label)),
      endPolicy_(end_policy)
{
    cursors.reserve(trace_.streams.size());
    for (const TraceStream &stream : trace_.streams) {
        std::uint64_t key = (std::uint64_t(stream.sm) << 32) | stream.warp;
        auto [it, inserted] = cursors.emplace(key, Cursor{});
        if (!inserted)
            fatal("corrupt trace '%s': duplicate stream (%u, %u)",
                  origin.c_str(), stream.sm, stream.warp);
        it->second.instrs = &stream.instrs;
    }
}

TraceWorkload::Cursor &
TraceWorkload::cursorFor(SmId sm, WarpId warp)
{
    // A (sm, warp) the trace never saw — possible only for digest-less
    // converted traces, since the config digest pins the machine shape —
    // behaves as an exhausted stream.
    return cursors[(std::uint64_t(sm) << 32) | warp];
}

WarpInstr
TraceWorkload::next(SmId sm, WarpId warp, Rng &rng)
{
    (void)rng;   // the recorded stream is the randomness
    Cursor &cursor = cursorFor(sm, warp);
    ++replayed;
    if (!cursor.instrs || cursor.pos >= cursor.instrs->size()) {
        if (endPolicy_ == TraceEndPolicy::Loop && cursor.instrs &&
            !cursor.instrs->empty()) {
            cursor.pos = 0;
        } else {
            if (!cursor.wrapped) {
                cursor.wrapped = true;
                ++exhausted;
            }
            // Idle instruction: no lanes, no traffic; the warp spins on
            // the issue port until quota or cycle cap ends the run.
            WarpInstr idle;
            idle.activeLanes = 0;
            return idle;
        }
        if (!cursor.wrapped) {
            cursor.wrapped = true;
            ++exhausted;
        }
    }
    return (*cursor.instrs)[cursor.pos++];
}

std::uint64_t
TraceWorkload::footprintBytes() const
{
    return trace_.header.footprintBytes;
}

std::string
TraceWorkload::name() const
{
    return trace_.header.name;
}

bool
TraceWorkload::irregular() const
{
    return trace_.header.irregular;
}

void
TraceWorkload::checkConfig(const GpuConfig &cfg) const
{
    std::uint64_t recorded = trace_.header.configDigest;
    if (recorded == kUnknownConfigDigest) {
        warn("trace '%s' carries no config digest (external origin): "
             "cannot verify it was recorded on this configuration",
             origin.c_str());
        return;
    }
    std::uint64_t ours = configDigest(cfg);
    if (ours != recorded)
        fatal("config digest mismatch replaying trace '%s': trace was "
              "recorded on %016llx, this run is configured as %016llx "
              "(replay requires the recording configuration)",
              origin.c_str(), (unsigned long long)recorded,
              (unsigned long long)ours);
}

namespace {

/**
 * Registers the "trace:" scheme: makeWorkload("trace:run.swtrace")
 * replays a file with the default (drain) end policy.  Lives in this
 * translation unit so any binary that can construct a TraceWorkload also
 * has the scheme registered.
 */
[[maybe_unused]] const bool traceSchemeRegistered = [] {
    registerWorkloadScheme(
        "trace",
        [](const std::string &path, double scale)
            -> std::unique_ptr<Workload> {
            if (scale != 1.0)
                warn("footprint scale %.3g ignored for trace replay "
                     "'%s': the stream is fixed at record time", scale,
                     path.c_str());
            return std::make_unique<TraceWorkload>(path);
        });
    return true;
}();

} // namespace

} // namespace sw
