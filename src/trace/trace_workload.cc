#include "trace/trace_workload.hh"

#include <utility>

#include "ckpt/ckpt_io.hh"
#include "sim/logging.hh"
#include "sim/ordered.hh"
#include "workload/benchmarks.hh"

namespace sw {

const char *
toString(TraceEndPolicy policy)
{
    switch (policy) {
      case TraceEndPolicy::Drain:
        return "drain";
      case TraceEndPolicy::Loop:
        return "loop";
    }
    return "?";
}

TraceWorkload::TraceWorkload(const std::string &path,
                             TraceEndPolicy end_policy)
    : TraceWorkload(readTraceFile(path), path, end_policy)
{
}

TraceWorkload::TraceWorkload(TraceFile trace, std::string origin_label,
                             TraceEndPolicy end_policy)
    : trace_(std::move(trace)), origin(std::move(origin_label)),
      endPolicy_(end_policy)
{
    cursors.reserve(trace_.streams.size());
    for (const TraceStream &stream : trace_.streams) {
        std::uint64_t key = (std::uint64_t(stream.sm) << 32) | stream.warp;
        auto [it, inserted] = cursors.emplace(key, Cursor{});
        if (!inserted)
            fatal("corrupt trace '%s': duplicate stream (%u, %u)",
                  origin.c_str(), stream.sm, stream.warp);
        it->second.instrs = &stream.instrs;
    }
}

TraceWorkload::Cursor &
TraceWorkload::cursorFor(SmId sm, WarpId warp)
{
    // A (sm, warp) the trace never saw — possible only for digest-less
    // converted traces, since the config digest pins the machine shape —
    // behaves as an exhausted stream.
    return cursors[(std::uint64_t(sm) << 32) | warp];
}

WarpInstr
TraceWorkload::next(SmId sm, WarpId warp, Rng &rng)
{
    (void)rng;   // the recorded stream is the randomness
    Cursor &cursor = cursorFor(sm, warp);
    ++replayed;
    if (!cursor.instrs || cursor.pos >= cursor.instrs->size()) {
        if (endPolicy_ == TraceEndPolicy::Loop && cursor.instrs &&
            !cursor.instrs->empty()) {
            cursor.pos = 0;
        } else {
            if (!cursor.wrapped) {
                cursor.wrapped = true;
                ++exhausted;
            }
            // Idle instruction: no lanes, no traffic; the warp spins on
            // the issue port until quota or cycle cap ends the run.
            WarpInstr idle;
            idle.activeLanes = 0;
            return idle;
        }
        if (!cursor.wrapped) {
            cursor.wrapped = true;
            ++exhausted;
        }
    }
    return (*cursor.instrs)[cursor.pos++];
}

std::uint64_t
TraceWorkload::footprintBytes() const
{
    return trace_.header.footprintBytes;
}

std::string
TraceWorkload::name() const
{
    return trace_.header.name;
}

bool
TraceWorkload::irregular() const
{
    return trace_.header.irregular;
}

std::uint64_t
TraceWorkload::streamPos(std::size_t stream_index) const
{
    const TraceStream &stream = trace_.streams.at(stream_index);
    auto it = cursors.find((std::uint64_t(stream.sm) << 32) | stream.warp);
    return it == cursors.end() ? 0 : it->second.pos;
}

void
TraceWorkload::saveState(CkptWriter &w) const
{
    w.section("trace_workload");
    w.u64(replayed);
    w.u64(exhausted);
    w.u64(cursors.size());
    for (std::uint64_t key : sortedKeys(cursors)) {
        const Cursor &cursor = cursors.at(key);
        w.u64(key);
        w.u64(cursor.pos);
        w.u8(cursor.wrapped ? 1 : 0);
    }
}

void
TraceWorkload::restoreState(CkptReader &r)
{
    r.expectSection("trace_workload");
    replayed = r.u64();
    exhausted = r.u64();
    std::uint64_t num_cursors = r.count(17, "trace cursors");
    cursors.clear();
    // The instrs pointers are reconstructed from the loaded trace; keys
    // absent from it (digest-less converted traces only) stay pointerless
    // and keep behaving as exhausted streams.
    std::unordered_map<std::uint64_t, const std::vector<WarpInstr> *> byKey;
    byKey.reserve(trace_.streams.size());
    for (const TraceStream &stream : trace_.streams) {
        byKey.emplace((std::uint64_t(stream.sm) << 32) | stream.warp,
                      &stream.instrs);
    }
    for (std::uint64_t n = 0; n < num_cursors; ++n) {
        std::uint64_t key = r.u64();
        Cursor cursor;
        cursor.pos = r.u64();
        cursor.wrapped = r.u8() != 0;
        auto stream_it = byKey.find(key);
        if (stream_it != byKey.end()) {
            cursor.instrs = stream_it->second;
            if (cursor.pos > cursor.instrs->size())
                fatal("checkpoint trace cursor for stream (%llu, %llu) at "
                      "%zu past its %zu records",
                      static_cast<unsigned long long>(key >> 32),
                      static_cast<unsigned long long>(key & 0xFFFFFFFFull),
                      cursor.pos, cursor.instrs->size());
        }
        if (!cursors.emplace(key, cursor).second)
            fatal("checkpoint trace cursor key %llu duplicated",
                  static_cast<unsigned long long>(key));
    }
}

void
TraceWorkload::checkConfig(const GpuConfig &cfg) const
{
    // Replay derives each stream's address space from the machine's SM
    // partitioning, not from the tag — so a tag that disagrees means the
    // stream would silently run in a different address space than its
    // author declared.
    for (const TraceStream &stream : trace_.streams) {
        Asid placed = tenantOfSm(cfg, stream.sm);
        if (stream.asid != placed)
            fatal("trace '%s' stream (%u, %u) is tagged ASID %u but this "
                  "machine's partitioning places SM %u in ASID %u",
                  origin.c_str(), stream.sm, stream.warp, stream.asid,
                  stream.sm, placed);
    }

    std::uint64_t recorded = trace_.header.configDigest;
    if (recorded == kUnknownConfigDigest) {
        warn("trace '%s' carries no config digest (external origin): "
             "cannot verify it was recorded on this configuration",
             origin.c_str());
        return;
    }
    std::uint64_t ours = configDigest(cfg);
    if (ours != recorded)
        fatal("config digest mismatch replaying trace '%s': trace was "
              "recorded on %016llx, this run is configured as %016llx "
              "(replay requires the recording configuration)",
              origin.c_str(), (unsigned long long)recorded,
              (unsigned long long)ours);
}

namespace {

/**
 * Registers the "trace:" scheme: makeWorkload("trace:run.swtrace")
 * replays a file with the default (drain) end policy.  Lives in this
 * translation unit so any binary that can construct a TraceWorkload also
 * has the scheme registered.
 */
[[maybe_unused]] const bool traceSchemeRegistered = [] {
    registerWorkloadScheme(
        "trace",
        [](const std::string &path, double scale)
            -> std::unique_ptr<Workload> {
            if (scale != 1.0)
                warn("footprint scale %.3g ignored for trace replay "
                     "'%s': the stream is fixed at record time", scale,
                     path.c_str());
            return std::make_unique<TraceWorkload>(path);
        });
    return true;
}();

} // namespace

} // namespace sw
