/**
 * @file
 * TraceWorkload: replay a `.swtrace` file as a first-class Workload.
 *
 * Replay is the external-workload entry point of the simulator: any
 * page-access stream — one we recorded ourselves, or one converted from
 * another simulator's trace (trace_convert.hh) — drives the translation
 * path exactly as a synthetic generator would.  Replaying under the
 * recording configuration and limits reproduces the recorded run
 * field-identically (the Rng the SM passes in is ignored; the stream *is*
 * the randomness).
 *
 * Also registers the "trace:" workload scheme with the factory registry,
 * so `makeWorkload("trace:run.swtrace")` — and therefore
 * `swsim_cli --bench trace:run.swtrace` — replays a file.
 */

#ifndef SW_TRACE_TRACE_WORKLOAD_HH
#define SW_TRACE_TRACE_WORKLOAD_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "trace/trace_format.hh"
#include "workload/workload.hh"

namespace sw {

/** What next() returns once a (sm, warp) stream runs out of records. */
enum class TraceEndPolicy
{
    /**
     * Emit idle instructions (zero active lanes): the warp spins without
     * memory traffic until the run's quota or cycle cap stops it.
     */
    Drain,
    /** Rewind the stream to its first record and keep replaying. */
    Loop,
};

const char *toString(TraceEndPolicy policy);

/** Replays a recorded trace; see the file comment for the contract. */
class TraceWorkload : public Workload
{
  public:
    /** Load @p path; fatal() with a diagnostic on any malformed input. */
    explicit TraceWorkload(const std::string &path,
                           TraceEndPolicy end_policy = TraceEndPolicy::Drain);

    /** Wrap an already decoded trace (the converter's test seam). */
    TraceWorkload(TraceFile trace, std::string origin,
                  TraceEndPolicy end_policy = TraceEndPolicy::Drain);

    WarpInstr next(SmId sm, WarpId warp, Rng &rng) override;
    std::uint64_t footprintBytes() const override;
    std::string name() const override;
    bool irregular() const override;

    /**
     * fatal() unless @p cfg hashes to the recorded config digest.  A
     * digest of kUnknownConfigDigest (converted traces) skips the check
     * with a warning: the stream still replays, but nothing guarantees it
     * was generated for this machine.
     */
    void checkConfig(const GpuConfig &cfg) const;

    std::uint64_t recordedDigest() const { return trace_.header.configDigest; }
    const TraceLimits &recordedLimits() const { return trace_.header.limits; }
    TraceEndPolicy endPolicy() const { return endPolicy_; }

    std::size_t numStreams() const { return trace_.streams.size(); }
    std::uint64_t totalInstrs() const { return trace_.totalInstrs(); }

    /** Records served so far, idle fills included. */
    std::uint64_t replayedInstrs() const { return replayed; }
    /** Streams that have run past their last record at least once. */
    std::uint64_t exhaustedStreams() const { return exhausted; }

    /** The decoded trace (sampling passes scan the raw streams). */
    const TraceFile &trace() const { return trace_; }

    /**
     * Records consumed so far from stream @p stream_index (an index into
     * trace().streams).  Fast-forward uses this together with
     * TraceFile::fetchOrder to resume the recorded global fetch
     * interleave from the replay's current per-warp positions.
     */
    std::uint64_t streamPos(std::size_t stream_index) const;

    void saveState(CkptWriter &w) const override;
    void restoreState(CkptReader &r) override;

  private:
    struct Cursor
    {
        const std::vector<WarpInstr> *instrs = nullptr;
        std::size_t pos = 0;
        bool wrapped = false;
    };

    Cursor &cursorFor(SmId sm, WarpId warp);

    TraceFile trace_;
    std::string origin;                 ///< path (or label) for diagnostics
    TraceEndPolicy endPolicy_;
    std::unordered_map<std::uint64_t, Cursor> cursors;
    std::uint64_t replayed = 0;
    std::uint64_t exhausted = 0;
};

} // namespace sw

#endif // SW_TRACE_TRACE_WORKLOAD_HH
