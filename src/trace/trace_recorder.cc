#include "trace/trace_recorder.hh"

#include <utility>

#include "sim/logging.hh"

namespace sw {

TraceRecorder::TraceRecorder(std::unique_ptr<Workload> inner)
    : inner_(std::move(inner))
{
    SW_ASSERT(inner_ != nullptr, "recorder needs a workload to wrap");
}

WarpInstr
TraceRecorder::next(SmId sm, WarpId warp, Rng &rng)
{
    WarpInstr instr = inner_->next(sm, warp, rng);
    std::uint64_t key = (std::uint64_t(sm) << 32) | warp;
    streams[key].push_back(instr);
    fetchKeys.push_back(key);
    ++recorded;
    return instr;
}

std::uint64_t
TraceRecorder::footprintBytes() const
{
    return inner_->footprintBytes();
}

std::string
TraceRecorder::name() const
{
    return inner_->name();
}

bool
TraceRecorder::irregular() const
{
    return inner_->irregular();
}

TraceFile
TraceRecorder::snapshot(const GpuConfig &cfg,
                        const TraceLimits &limits) const
{
    TraceFile trace;
    trace.header.configDigest = configDigest(cfg);
    trace.header.name = inner_->name();
    trace.header.footprintBytes = inner_->footprintBytes();
    trace.header.irregular = inner_->irregular();
    trace.header.limits = limits;
    trace.streams.reserve(streams.size());
    std::map<std::uint64_t, std::uint32_t> indexOf;
    for (const auto &[key, instrs] : streams) {
        indexOf[key] = std::uint32_t(trace.streams.size());
        TraceStream stream;
        stream.sm = SmId(key >> 32);
        stream.warp = WarpId(key & 0xFFFFFFFFu);
        // The recording machine's partitioning decides which address
        // space each SM fetched from; stamp it so the trace documents
        // its tenancy (replay re-derives the ASID the same way).
        stream.asid = tenantOfSm(cfg, stream.sm);
        stream.instrs = instrs;
        trace.streams.push_back(std::move(stream));
    }
    trace.fetchOrder.reserve(fetchKeys.size());
    for (std::uint64_t key : fetchKeys)
        trace.fetchOrder.push_back(indexOf.at(key));
    return trace;
}

void
TraceRecorder::writeFile(const std::string &path, const GpuConfig &cfg,
                         const TraceLimits &limits) const
{
    writeTraceFile(path, snapshot(cfg, limits));
}

} // namespace sw
