/**
 * @file
 * StatRegistry: the unified statistics registry of the observability
 * subsystem (src/obs).
 *
 * Components register their existing counters / LatencyStats / Histograms
 * under hierarchical dotted names ("sm3.l1tlb.misses",
 * "l2tlb.intlb_mshr.alloc_fail") through a non-owning StatGroup handle; the
 * registry then dumps everything to JSON generically, so adding a counter
 * to a component means adding one registration line instead of editing
 * every serialiser by hand.  Registration is pointer-based and costs
 * nothing on the simulation hot path: the registry only reads the values
 * when capture()/dumpJson() is called.
 *
 * Lifetime: entries point into live component state.  capture() snapshots
 * the current values into registry-owned storage so the dump remains valid
 * after the components (the Gpu) are destroyed — the experiment harness
 * captures right after a run completes.
 */

#ifndef SW_OBS_STAT_REGISTRY_HH
#define SW_OBS_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace sw {

class StatRegistry;

/** Escape a string for embedding in a JSON literal. */
std::string jsonEscape(const std::string &text);

/**
 * Non-owning registration handle scoped to a dotted prefix.  Cheap to copy;
 * group("sub") derives a nested scope.  All registered pointers must
 * outlive the registry's capture()/dumpJson() calls.
 */
class StatGroup
{
  public:
    StatGroup(StatRegistry &registry, std::string prefix)
        : registry_(&registry), prefix_(std::move(prefix))
    {
    }

    /** Derive a nested scope: group("l1tlb") under "sm3" -> "sm3.l1tlb". */
    StatGroup group(const std::string &name) const;

    /** Register a monotonic 64-bit counter. */
    void counter(const std::string &name, const std::uint64_t *value);

    /** Register a 32-bit counter (occupancy counters and the like). */
    void counter(const std::string &name, const std::uint32_t *value);

    /** Register a floating-point value. */
    void value(const std::string &name, const double *value);

    /** Register a computed gauge (evaluated at capture time). */
    void gauge(const std::string &name, std::function<double()> fn);

    /** Register a LatencyStat (dumped as count/sum/min/max/mean). */
    void latency(const std::string &name, const LatencyStat *stat);

    /** Register a Histogram (dumped as samples/width/p50/p95/p99). */
    void histogram(const std::string &name, const Histogram *hist);

    const std::string &prefix() const { return prefix_; }

  private:
    std::string qualify(const std::string &name) const;

    StatRegistry *registry_;
    std::string prefix_;
};

/** Registry of hierarchically named, non-owned statistics. */
class StatRegistry
{
  public:
    StatRegistry() = default;

    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** Root registration scope (empty prefix). */
    StatGroup root() { return StatGroup(*this, ""); }

    /** Registration scope under @p prefix. */
    StatGroup group(std::string prefix)
    {
        return StatGroup(*this, std::move(prefix));
    }

    std::size_t size() const { return entries.size(); }
    bool has(const std::string &name) const;

    /** All registered dotted names, sorted. */
    std::vector<std::string> names() const;

    /**
     * Snapshot every entry's current value into registry-owned storage.
     * After capture() the registered pointers may dangle; dumpJson() keeps
     * serving the captured values.
     */
    void capture();

    /**
     * One JSON object keyed by dotted stat name (sorted), e.g.
     * {"l2tlb.hits":12,"walks.queue_delay":{"count":4,...}}.
     * Serves the capture()d snapshot if one exists, else reads live.
     */
    std::string dumpJson() const;

    /** Write dumpJson() to a stream. */
    void writeJson(std::ostream &out) const;

  private:
    friend class StatGroup;

    struct Entry
    {
        enum class Kind
        {
            U64,
            U32,
            F64,
            Gauge,
            Latency,
            Hist,
        };

        Kind kind = Kind::U64;
        const std::uint64_t *u64 = nullptr;
        const std::uint32_t *u32 = nullptr;
        const double *f64 = nullptr;
        std::function<double()> gauge;
        const LatencyStat *lat = nullptr;
        const Histogram *hist = nullptr;
    };

    void add(std::string name, Entry entry);

    /** Render one entry's current value as a JSON fragment. */
    static std::string valueJson(const Entry &entry);

    std::vector<std::pair<std::string, Entry>> entries;
    /** capture()d name -> rendered-JSON-value pairs (empty: not captured). */
    std::vector<std::pair<std::string, std::string>> snapshot;
};

} // namespace sw

#endif // SW_OBS_STAT_REGISTRY_HH
