/**
 * @file
 * TranslationTracer: ring-buffered per-request lifecycle recorder.
 *
 * Components stamp each translation's phase transitions (L1 TLB miss ->
 * L2 lookup -> MSHR/In-TLB alloc -> backend submit -> PTW/PW-Warp dispatch
 * -> per-level walk memory reads -> fill -> wakeup) through the SW_TRACE
 * macro.  The tracer never schedules events and never advances the clock,
 * so an installed tracer leaves the simulated timeline bit-identical; an
 * uninstalled tracer (null pointer) costs one predicted branch, and builds
 * configured with -DSOFTWALKER_TRACING=OFF compile the stamps away
 * entirely, mirroring the SW_AUDIT pattern from src/check.
 *
 * Output: a Chrome/Perfetto trace_event JSON array (writeTraceJson) with
 * one "X" (complete) event per walk phase span and "i" (instant) events
 * for the raw stamps, plus per-phase latency attribution (queue = walk
 * created -> walker pickup, walk = pickup -> fill) that the rebuilt Fig 7
 * harness reads instead of coarse engine aggregates.
 */

#ifndef SW_OBS_TRACE_HH
#define SW_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

#ifndef SOFTWALKER_TRACE
#define SOFTWALKER_TRACE 1
#endif

#if SOFTWALKER_TRACE
/** Stamp a lifecycle phase if a tracer is installed (null check only). */
#define SW_TRACE(tracer, ...)                                               \
    do {                                                                    \
        if (tracer)                                                         \
            (tracer)->record(__VA_ARGS__);                                  \
    } while (0)
#else
#define SW_TRACE(tracer, ...)                                               \
    do {                                                                    \
        (void)sizeof(tracer);                                               \
    } while (0)
#endif

namespace sw {

/** True when the build compiles the SW_TRACE stamps in. */
inline constexpr bool kTracingCompiled = SOFTWALKER_TRACE != 0;

/** Lifecycle phases of one translation / page-table walk. */
enum class TracePhase : std::uint8_t
{
    L1Miss,         ///< L1 TLB lookup missed
    L2Lookup,       ///< request reached the L2 TLB
    L2Hit,          ///< L2 TLB lookup hit
    L2Miss,         ///< L2 TLB lookup missed
    MshrAlloc,      ///< regular L2 MSHR allocated
    InTlbAlloc,     ///< In-TLB MSHR slot allocated (§4.5)
    MshrFail,       ///< no miss-tracking capacity; requester parked
    WalkCreated,    ///< walk spawned (after the PWC consult)
    BackendSubmit,  ///< walk handed to the walk backend
    WalkDispatch,   ///< picked up by a hardware walker / PW-Warp lane
    PtRead,         ///< one per-level page-table memory read issued
    WalkFill,       ///< walk completed; TLBs filled
    Fault,          ///< walk faulted into the Fault Buffer
    Wakeup,         ///< an L1 waiter was resolved
};

const char *toString(TracePhase phase);

/** Ring-buffered lifecycle recorder with per-phase latency attribution. */
class TranslationTracer
{
  public:
    /** @p where values meaning "not tied to one SM / walker". */
    static constexpr std::uint32_t kNoWhere = ~0u;

    /** One raw phase stamp. */
    struct Stamp
    {
        Cycle cycle = 0;
        std::uint64_t id = 0;    ///< walk id (0: not yet / not applicable)
        Vpn vpn = 0;
        std::uint32_t where = kNoWhere;  ///< SM id when known
        TracePhase phase = TracePhase::L1Miss;
        Asid asid = 0;           ///< owning tenant (per-tenant attribution)
    };

    /** Reconstructed span record for one completed walk. */
    struct WalkSpan
    {
        std::uint64_t id = 0;
        Vpn vpn = 0;
        Asid asid = 0;
        Cycle created = 0;     ///< WalkCreated
        Cycle dispatched = 0;  ///< first WalkDispatch
        Cycle filled = 0;      ///< WalkFill
        std::uint32_t ptReads = 0;
        std::uint32_t where = kNoWhere;  ///< dispatch target when known
    };

    /**
     * @param capacity ring capacity for raw stamps and completed spans;
     *        the oldest records are overwritten (dropped counters track
     *        how much history was lost).
     */
    explicit TranslationTracer(std::size_t capacity = 1 << 16);

    TranslationTracer(const TranslationTracer &) = delete;
    TranslationTracer &operator=(const TranslationTracer &) = delete;

    /** Stamp one phase transition.  Never schedules; never perturbs. */
    void record(TracePhase phase, Cycle cycle, std::uint64_t id, Vpn vpn,
                std::uint32_t where = kNoWhere, Asid asid = 0);

    // ---- Per-phase latency attribution (completed walks) ----------------
    /** Walk created -> walker/PW-Warp pickup. */
    const LatencyStat &queuePhase() const { return queuePhase_; }
    /** Pickup -> fill at the L2 TLB. */
    const LatencyStat &walkPhase() const { return walkPhase_; }
    /** Created -> fill (sum of the two phases). */
    const LatencyStat &totalPhase() const { return totalPhase_; }
    /** Page-table reads per completed walk. */
    const LatencyStat &ptReadsPerWalk() const { return ptReadsPerWalk_; }

    /** Zero the attribution stats (post-warmup measurement reset). */
    void resetAttribution();

    // ---- Raw history ----------------------------------------------------
    std::uint64_t stampsRecorded() const { return stampsRecorded_; }
    std::uint64_t stampsDropped() const { return stampsDropped_; }
    std::uint64_t spansCompleted() const { return spansCompleted_; }
    std::uint64_t spansDropped() const { return spansDropped_; }

    /** Stamps still in the ring, oldest first. */
    std::vector<Stamp> stamps() const;

    /** Completed walk spans still in the ring, oldest first. */
    std::vector<WalkSpan> spans() const;

    /**
     * Emit a Chrome/Perfetto trace_event JSON array: "X" complete events
     * for each retained walk's queue and walk phases, "i" instant events
     * for the retained raw stamps.  ts/dur are in simulated cycles.
     */
    void writeTraceJson(std::ostream &out) const;

  private:
    std::size_t capacity_;

    std::vector<Stamp> ring;
    std::size_t ringNext = 0;
    std::uint64_t stampsRecorded_ = 0;
    std::uint64_t stampsDropped_ = 0;

    /** Walks between WalkCreated and WalkFill. */
    std::unordered_map<std::uint64_t, WalkSpan> live;

    std::vector<WalkSpan> spanRing;
    std::size_t spanNext = 0;
    std::uint64_t spansCompleted_ = 0;
    std::uint64_t spansDropped_ = 0;

    LatencyStat queuePhase_;
    LatencyStat walkPhase_;
    LatencyStat totalPhase_;
    LatencyStat ptReadsPerWalk_;
};

} // namespace sw

#endif // SW_OBS_TRACE_HH
