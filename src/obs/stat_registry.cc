#include "obs/stat_registry.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace sw {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char ch : text) {
        switch (ch) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                out += strprintf("\\u%04x", ch);
            } else {
                out += ch;
            }
            break;
        }
    }
    return out;
}

StatGroup
StatGroup::group(const std::string &name) const
{
    return StatGroup(*registry_, qualify(name));
}

std::string
StatGroup::qualify(const std::string &name) const
{
    return prefix_.empty() ? name : prefix_ + "." + name;
}

void
StatGroup::counter(const std::string &name, const std::uint64_t *value)
{
    StatRegistry::Entry entry;
    entry.kind = StatRegistry::Entry::Kind::U64;
    entry.u64 = value;
    registry_->add(qualify(name), std::move(entry));
}

void
StatGroup::counter(const std::string &name, const std::uint32_t *value)
{
    StatRegistry::Entry entry;
    entry.kind = StatRegistry::Entry::Kind::U32;
    entry.u32 = value;
    registry_->add(qualify(name), std::move(entry));
}

void
StatGroup::value(const std::string &name, const double *value)
{
    StatRegistry::Entry entry;
    entry.kind = StatRegistry::Entry::Kind::F64;
    entry.f64 = value;
    registry_->add(qualify(name), std::move(entry));
}

void
StatGroup::gauge(const std::string &name, std::function<double()> fn)
{
    StatRegistry::Entry entry;
    entry.kind = StatRegistry::Entry::Kind::Gauge;
    entry.gauge = std::move(fn);
    registry_->add(qualify(name), std::move(entry));
}

void
StatGroup::latency(const std::string &name, const LatencyStat *stat)
{
    StatRegistry::Entry entry;
    entry.kind = StatRegistry::Entry::Kind::Latency;
    entry.lat = stat;
    registry_->add(qualify(name), std::move(entry));
}

void
StatGroup::histogram(const std::string &name, const Histogram *hist)
{
    StatRegistry::Entry entry;
    entry.kind = StatRegistry::Entry::Kind::Hist;
    entry.hist = hist;
    registry_->add(qualify(name), std::move(entry));
}

bool
StatRegistry::has(const std::string &name) const
{
    for (const auto &[entry_name, entry] : entries)
        if (entry_name == name)
            return true;
    return false;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &[name, entry] : entries)
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

void
StatRegistry::add(std::string name, Entry entry)
{
    SW_ASSERT(!name.empty(), "stat registered without a name");
    SW_ASSERT(!has(name), "duplicate stat registration '%s'", name.c_str());
    entries.emplace_back(std::move(name), std::move(entry));
}

std::string
StatRegistry::valueJson(const Entry &entry)
{
    switch (entry.kind) {
      case Entry::Kind::U64:
        return strprintf("%llu",
                         static_cast<unsigned long long>(*entry.u64));
      case Entry::Kind::U32:
        return strprintf("%u", *entry.u32);
      case Entry::Kind::F64:
        return strprintf("%.6g", *entry.f64);
      case Entry::Kind::Gauge:
        return strprintf("%.6g", entry.gauge());
      case Entry::Kind::Latency: {
        const LatencyStat &s = *entry.lat;
        return strprintf(
            "{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
            "\"mean\":%.6g}",
            static_cast<unsigned long long>(s.count),
            static_cast<unsigned long long>(s.sum),
            static_cast<unsigned long long>(s.count ? s.minv : 0),
            static_cast<unsigned long long>(s.maxv), s.mean());
      }
      case Entry::Kind::Hist: {
        const Histogram &h = *entry.hist;
        return strprintf(
            "{\"samples\":%llu,\"bucket_width\":%llu,\"p50\":%llu,"
            "\"p95\":%llu,\"p99\":%llu}",
            static_cast<unsigned long long>(h.samples()),
            static_cast<unsigned long long>(h.bucketWidth()),
            static_cast<unsigned long long>(h.p50()),
            static_cast<unsigned long long>(h.p95()),
            static_cast<unsigned long long>(h.p99()));
      }
    }
    return "null";
}

void
StatRegistry::capture()
{
    snapshot.clear();
    snapshot.reserve(entries.size());
    for (const auto &[name, entry] : entries)
        snapshot.emplace_back(name, valueJson(entry));
}

std::string
StatRegistry::dumpJson() const
{
    std::vector<std::pair<std::string, std::string>> rows;
    if (!snapshot.empty() || entries.empty()) {
        rows = snapshot;
    } else {
        rows.reserve(entries.size());
        for (const auto &[name, entry] : entries)
            rows.emplace_back(name, valueJson(entry));
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });

    std::ostringstream out;
    out << "{";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i)
            out << ",";
        out << "\"" << jsonEscape(rows[i].first) << "\":" << rows[i].second;
    }
    out << "}";
    return out.str();
}

void
StatRegistry::writeJson(std::ostream &out) const
{
    out << dumpJson() << "\n";
}

} // namespace sw
