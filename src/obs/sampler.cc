#include "obs/sampler.hh"

#include <ostream>

#include "prof/hostprof.hh"
#include "sim/logging.hh"

namespace sw {

void
TimeSeriesSampler::gauge(std::string name, std::function<double()> fn)
{
    SW_ASSERT(!installedOn, "register gauges before install()");
    SW_ASSERT(fn, "gauge '%s' registered without a callable", name.c_str());
    names_.push_back(std::move(name));
    gauges.push_back(std::move(fn));
}

void
TimeSeriesSampler::install(EventQueue &eq, Cycle interval)
{
    SW_ASSERT(interval > 0, "sampler interval must be non-zero");
    uninstall();
    installedOn = &eq;
    sweepId = eq.addPeriodicCheck(interval,
                                  [this](Cycle now) { sampleNow(now); });
}

void
TimeSeriesSampler::uninstall()
{
    if (installedOn) {
        installedOn->removePeriodicCheck(sweepId);
        installedOn = nullptr;
        sweepId = 0;
    }
}

void
TimeSeriesSampler::sampleNow(Cycle now)
{
    SW_PROF_SCOPE(prof::Zone::ObsSample);
    Row row;
    row.cycle = now;
    row.values.reserve(gauges.size());
    for (const auto &fn : gauges)
        row.values.push_back(fn());
    rows_.push_back(std::move(row));
}

std::string
TimeSeriesSampler::csvHeader() const
{
    std::string out = "cycle";
    for (const std::string &name : names_) {
        out += ',';
        out += name;
    }
    return out;
}

void
TimeSeriesSampler::writeCsv(std::ostream &out) const
{
    out << csvHeader() << "\n";
    for (const Row &row : rows_) {
        out << row.cycle;
        for (double v : row.values)
            out << ',' << strprintf("%.6g", v);
        out << "\n";
    }
}

} // namespace sw
