#include "obs/trace.hh"

#include <ostream>

#include "prof/hostprof.hh"
#include "sim/logging.hh"

namespace sw {

const char *
toString(TracePhase phase)
{
    switch (phase) {
      case TracePhase::L1Miss:        return "l1_miss";
      case TracePhase::L2Lookup:      return "l2_lookup";
      case TracePhase::L2Hit:         return "l2_hit";
      case TracePhase::L2Miss:        return "l2_miss";
      case TracePhase::MshrAlloc:     return "mshr_alloc";
      case TracePhase::InTlbAlloc:    return "intlb_alloc";
      case TracePhase::MshrFail:      return "mshr_fail";
      case TracePhase::WalkCreated:   return "walk_created";
      case TracePhase::BackendSubmit: return "backend_submit";
      case TracePhase::WalkDispatch:  return "walk_dispatch";
      case TracePhase::PtRead:        return "pt_read";
      case TracePhase::WalkFill:      return "walk_fill";
      case TracePhase::Fault:         return "fault";
      case TracePhase::Wakeup:        return "wakeup";
    }
    return "?";
}

TranslationTracer::TranslationTracer(std::size_t capacity)
    : capacity_(capacity)
{
    SW_ASSERT(capacity_ > 0, "tracer needs a non-zero ring capacity");
    ring.reserve(capacity_);
    spanRing.reserve(capacity_);
}

void
TranslationTracer::record(TracePhase phase, Cycle cycle, std::uint64_t id,
                          Vpn vpn, std::uint32_t where, Asid asid)
{
    ++stampsRecorded_;
    Stamp stamp{cycle, id, vpn, where, phase, asid};
    if (ring.size() < capacity_) {
        ring.push_back(stamp);
    } else {
        ring[ringNext] = stamp;
        ringNext = (ringNext + 1) % capacity_;
        ++stampsDropped_;
    }

    // Lifecycle reconstruction: only phases keyed by a walk id take part.
    if (id == 0)
        return;
    switch (phase) {
      case TracePhase::WalkCreated: {
        WalkSpan span;
        span.id = id;
        span.vpn = vpn;
        span.asid = asid;
        span.created = cycle;
        live[id] = span;
        break;
      }
      case TracePhase::WalkDispatch: {
        auto it = live.find(id);
        if (it != live.end() && it->second.dispatched == 0) {
            it->second.dispatched = cycle;
            it->second.where = where;
        }
        break;
      }
      case TracePhase::PtRead: {
        auto it = live.find(id);
        if (it != live.end())
            ++it->second.ptReads;
        break;
      }
      case TracePhase::WalkFill: {
        auto it = live.find(id);
        if (it == live.end())
            break;
        WalkSpan span = it->second;
        live.erase(it);
        span.filled = cycle;
        // Faulted walks are replayed without a fresh WalkCreated; a
        // replay that never went through dispatch attributes everything
        // to the walk phase.
        Cycle dispatch = span.dispatched ? span.dispatched : span.created;
        queuePhase_.add(dispatch - span.created);
        walkPhase_.add(span.filled - dispatch);
        totalPhase_.add(span.filled - span.created);
        ptReadsPerWalk_.add(span.ptReads);
        ++spansCompleted_;
        if (spanRing.size() < capacity_) {
            spanRing.push_back(span);
        } else {
            spanRing[spanNext] = span;
            spanNext = (spanNext + 1) % capacity_;
            ++spansDropped_;
        }
        break;
      }
      case TracePhase::Fault:
        // The replay arrives as a fresh WalkCreated with a new id; drop
        // the faulted span so the live map doesn't accumulate them.
        live.erase(id);
        break;
      default:
        break;
    }
}

void
TranslationTracer::resetAttribution()
{
    queuePhase_.reset();
    walkPhase_.reset();
    totalPhase_.reset();
    ptReadsPerWalk_.reset();
}

std::vector<TranslationTracer::Stamp>
TranslationTracer::stamps() const
{
    std::vector<Stamp> out;
    out.reserve(ring.size());
    for (std::size_t i = 0; i < ring.size(); ++i)
        out.push_back(ring[(ringNext + i) % ring.size()]);
    return out;
}

std::vector<TranslationTracer::WalkSpan>
TranslationTracer::spans() const
{
    std::vector<WalkSpan> out;
    out.reserve(spanRing.size());
    for (std::size_t i = 0; i < spanRing.size(); ++i)
        out.push_back(spanRing[(spanNext + i) % spanRing.size()]);
    return out;
}

void
TranslationTracer::writeTraceJson(std::ostream &out) const
{
    // Chrome trace_event "JSON array format": Perfetto and chrome://tracing
    // both load a bare array of event objects.  ts/dur are simulated
    // cycles (the viewers treat them as microseconds; only ratios matter).
    out << "[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            out << ",\n";
        first = false;
    };

    for (const WalkSpan &span : spans()) {
        unsigned long long tid =
            span.where == kNoWhere ? 0ull
                                   : static_cast<unsigned long long>(
                                         span.where);
        sep();
        out << strprintf(
            "{\"name\":\"queue\",\"cat\":\"walk\",\"ph\":\"X\","
            "\"ts\":%llu,\"dur\":%llu,\"pid\":0,\"tid\":%llu,"
            "\"args\":{\"id\":%llu,\"vpn\":%llu,\"asid\":%u}}",
            static_cast<unsigned long long>(span.created),
            static_cast<unsigned long long>(
                (span.dispatched ? span.dispatched : span.created) -
                span.created),
            tid, static_cast<unsigned long long>(span.id),
            static_cast<unsigned long long>(span.vpn), span.asid);
        sep();
        Cycle dispatch = span.dispatched ? span.dispatched : span.created;
        out << strprintf(
            "{\"name\":\"walk\",\"cat\":\"walk\",\"ph\":\"X\","
            "\"ts\":%llu,\"dur\":%llu,\"pid\":0,\"tid\":%llu,"
            "\"args\":{\"id\":%llu,\"vpn\":%llu,\"asid\":%u,"
            "\"pt_reads\":%u}}",
            static_cast<unsigned long long>(dispatch),
            static_cast<unsigned long long>(span.filled - dispatch),
            tid, static_cast<unsigned long long>(span.id),
            static_cast<unsigned long long>(span.vpn), span.asid,
            span.ptReads);
    }

    for (const Stamp &stamp : stamps()) {
        sep();
        out << strprintf(
            "{\"name\":\"%s\",\"cat\":\"phase\",\"ph\":\"i\",\"s\":\"t\","
            "\"ts\":%llu,\"pid\":0,\"tid\":%llu,"
            "\"args\":{\"id\":%llu,\"vpn\":%llu,\"asid\":%u}}",
            toString(stamp.phase),
            static_cast<unsigned long long>(stamp.cycle),
            stamp.where == kNoWhere
                ? 0ull
                : static_cast<unsigned long long>(stamp.where),
            static_cast<unsigned long long>(stamp.id),
            static_cast<unsigned long long>(stamp.vpn), stamp.asid);
    }

    // Host-side view (hostprof builds with the profiler enabled): zone
    // spans on a dedicated host pid and event-queue gauge counters on the
    // simulated timeline.  A no-op in default builds.
    bool need_comma = !first;
    prof::HostProfiler::instance().appendTraceEvents(out, need_comma);

    out << "]\n";
}

} // namespace sw
