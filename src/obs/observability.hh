/**
 * @file
 * Observability: optional bundle of the three src/obs layers.
 *
 * The experiment harness threads one of these (or nullptr) through a run:
 * the registry collects component stats for the generic JSON dump, the
 * tracer stamps translation lifecycles, and the sampler snapshots gauges
 * every sampleInterval cycles.  Any member may be null; a null bundle (or
 * the default-constructed one) reproduces the uninstrumented run exactly.
 */

#ifndef SW_OBS_OBSERVABILITY_HH
#define SW_OBS_OBSERVABILITY_HH

#include "obs/sampler.hh"
#include "obs/stat_registry.hh"
#include "obs/trace.hh"
#include "sim/types.hh"

namespace sw {

/** Optional observability hooks for one simulation run. */
struct Observability
{
    StatRegistry *registry = nullptr;
    TranslationTracer *tracer = nullptr;
    TimeSeriesSampler *sampler = nullptr;
    /** Sweep period for the sampler (ignored when sampler is null). */
    Cycle sampleInterval = 10000;

    bool any() const { return registry || tracer || sampler; }
};

} // namespace sw

#endif // SW_OBS_OBSERVABILITY_HH
