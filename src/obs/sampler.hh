/**
 * @file
 * TimeSeriesSampler: periodic gauge snapshots over simulated time.
 *
 * Piggybacks on EventQueue::addPeriodicCheck — the same non-perturbing
 * sweep mechanism the Simulation Auditor uses — to snapshot registered
 * gauges (PW-Warp occupancy, In-TLB MSHR occupancy, PTW queue depth, TLB
 * miss rate, ...) at a configurable cycle interval.  Samples accumulate in
 * sampler-owned rows and are written out as CSV after the run, so the
 * Fig 17 / Fig 24-style over-time plots read real trajectories instead of
 * end-of-run peaks.  The sampler never schedules events: an installed
 * sampler leaves the simulated timeline bit-identical.
 */

#ifndef SW_OBS_SAMPLER_HH
#define SW_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace sw {

/** Periodic snapshotter of named gauges into in-memory CSV rows. */
class TimeSeriesSampler
{
  public:
    /** One snapshot: the sweep cycle plus one value per gauge. */
    struct Row
    {
        Cycle cycle = 0;
        std::vector<double> values;
    };

    TimeSeriesSampler() = default;

    TimeSeriesSampler(const TimeSeriesSampler &) = delete;
    TimeSeriesSampler &operator=(const TimeSeriesSampler &) = delete;

    ~TimeSeriesSampler() { uninstall(); }

    /** Register a gauge; must happen before install(). */
    void gauge(std::string name, std::function<double()> fn);

    /**
     * Arm periodic sampling on @p eq every @p interval cycles (sweeps ride
     * on real events between two events; nothing is scheduled).
     */
    void install(EventQueue &eq, Cycle interval);

    /** Disarm (safe to call when not installed). */
    void uninstall();

    /** Take one snapshot immediately (install() does this via the sweep). */
    void sampleNow(Cycle now);

    std::size_t numGauges() const { return gauges.size(); }
    std::size_t numRows() const { return rows_.size(); }
    const std::vector<Row> &rows() const { return rows_; }
    const std::vector<std::string> &gaugeNames() const { return names_; }

    /** CSV header: "cycle,<gauge>,<gauge>,...". */
    std::string csvHeader() const;

    /** Write header + all rows. */
    void writeCsv(std::ostream &out) const;

  private:
    std::vector<std::function<double()>> gauges;
    std::vector<std::string> names_;
    std::vector<Row> rows_;

    EventQueue *installedOn = nullptr;
    std::uint64_t sweepId = 0;
};

} // namespace sw

#endif // SW_OBS_SAMPLER_HH
