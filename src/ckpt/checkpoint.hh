/**
 * @file
 * Whole-machine checkpoints (`softwalker.ckpt/2`).
 *
 * A checkpoint serialises a quiesced Gpu — event clock, TLBs, PWC, page
 * table and frame allocator, caches, DRAM channel state, fault buffer,
 * walk backend, every statistic, and the workload cursors — so a run can
 * be split at an instruction barrier and resumed later (or in another
 * process) with a bit-identical remainder.  The determinism contract and
 * the file layout are specified normatively in docs/CHECKPOINTS.md.
 *
 * Save is only legal at a quiesced tick: immediately after a
 * Gpu::runSegment() whose fetch quota drained (every warp retired, event
 * queue empty).  Restore is only legal into a *fresh* Gpu constructed
 * from the same GpuConfig and workload source; the config digest and the
 * workload name are verified, and a digest mismatch is a hard fatal —
 * unlike trace replay there is no unknown-origin escape hatch, because
 * restoring state into a differently-shaped machine corrupts it silently.
 */

#ifndef SW_CKPT_CHECKPOINT_HH
#define SW_CKPT_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sw {

class Gpu;

/** First eight bytes of every .swckpt file. */
inline constexpr char kCkptMagic[8] =
    {'S', 'W', 'C', 'K', 'P', 'T', '\0', '\0'};

/**
 * Current checkpoint format version; readers reject anything else.
 * Version 2 (multi-tenancy): one workload name per tenant in the header,
 * per-ASID page tables under the address-space manager, and an ASID tag
 * on every serialised TLB/PWC entry.
 */
inline constexpr std::uint32_t kCkptVersion = 2;

/** Header fields of a checkpoint (returned by save and restore). */
struct CheckpointMeta
{
    std::uint64_t configDigest = 0;   ///< configDigest(cfg) at save time
    std::string workloadName;         ///< Workload::name() at save time
    /** Warp instructions fetched before the barrier (segment-1 quota). */
    std::uint64_t instrsFetched = 0;
    std::uint64_t fileBytes = 0;      ///< encoded size (host gauge)
};

/**
 * Serialise @p gpu into an in-memory checkpoint image.  @p instrs_fetched
 * records where the barrier sits so the restoring side can size its
 * remaining quota.  Asserts the quiesce contract (see Gpu::saveState).
 */
std::vector<std::uint8_t> encodeCheckpoint(const Gpu &gpu,
                                           std::uint64_t instrs_fetched);

/**
 * Restore a checkpoint image into a fresh @p gpu (same config, same
 * workload source, backend installed).  fatal() on bad magic, version,
 * config-digest or workload-name mismatch, truncation, or trailing bytes.
 */
CheckpointMeta decodeCheckpoint(Gpu &gpu, const std::uint8_t *data,
                                std::size_t size,
                                const std::string &context);

/** Encode and write to @p path; fatal() on I/O failure. */
CheckpointMeta saveCheckpoint(const Gpu &gpu, std::uint64_t instrs_fetched,
                              const std::string &path);

/** Read @p path and restore into @p gpu; fatal() on any failure. */
CheckpointMeta restoreCheckpoint(Gpu &gpu, const std::string &path);

/**
 * Total bytes of checkpoint data written by this process (host gauge;
 * reported through the hostprof JSON artifact's gauge table).
 */
std::uint64_t checkpointBytesWritten();

} // namespace sw

#endif // SW_CKPT_CHECKPOINT_HH
