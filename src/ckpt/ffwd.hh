/**
 * @file
 * Functional fast-forward: stream workload instructions through the
 * page table and TLB hierarchy with no event-queue timing.
 *
 * Fast-forward warms exactly the state that survives a warmup region —
 * page-table mappings, TLB and PWC contents, and the workload's cursor /
 * RNG position — at functional speed (no events, no latencies, no
 * contention).  It replaces cycle-accurate warmup for long-warmup runs
 * and skips the non-selected windows of a phase-sampled run; the harness
 * zeroes all statistics afterwards so the measured region starts clean.
 *
 * The instruction interleaving is round-robin across the same active
 * (sm, warp) set a detailed segment would start, pulling each stream
 * through the owning SM's checkpointed RNG — so the workload cursors land
 * where a detailed run's would, and a subsequent detailed segment (or
 * checkpoint) continues the same streams.  Timing-dependent interleaving
 * differences are inherent to functional warmup and are bounded by the
 * measurement methodology (see docs/CHECKPOINTS.md §Fast-forward).
 */

#ifndef SW_CKPT_FFWD_HH
#define SW_CKPT_FFWD_HH

#include <cstdint>

#include "gpu/gpu.hh"

namespace sw {

/** What the functional warmup touched (reporting only). */
struct FfwdStats
{
    std::uint64_t instrs = 0;        ///< warp instructions streamed
    std::uint64_t pagesTouched = 0;  ///< coalesced page translations
    std::uint64_t l1TlbHits = 0;
    std::uint64_t l2TlbHits = 0;
    std::uint64_t walks = 0;         ///< functional page-table walks
};

/**
 * Stream @p instrs warp instructions through @p gpu functionally.  Only
 * legal before a detailed segment starts or at a quiesced barrier (the
 * event queue must be empty).  @p limits supplies the active-warp
 * distribution (limits.maxActiveWarps) so ffwd advances the same streams
 * the detailed segments run.
 */
FfwdStats fastForward(Gpu &gpu, std::uint64_t instrs,
                      const Gpu::RunLimits &limits);

} // namespace sw

#endif // SW_CKPT_FFWD_HH
