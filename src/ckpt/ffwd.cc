#include "ckpt/ffwd.hh"

#include <algorithm>
#include <vector>

#include "prof/hostprof.hh"
#include "sim/logging.hh"
#include "trace/trace_workload.hh"
#include "vm/address.hh"

namespace sw {

namespace {

struct Stream
{
    SmId sm;
    WarpId warp;
};

/**
 * Fetch one instruction from @p workload for @p stream and functionally
 * touch every distinct page it references (execMemInstr's coalescing,
 * without timing).
 */
void
touchOne(Gpu &gpu, const Stream &stream, const PageGeometry &geometry,
         std::vector<Vpn> &vpns, FfwdStats &out)
{
    const GpuConfig &cfg = gpu.config();
    Asid asid = tenantOfSm(cfg, stream.sm);
    WarpInstr instr = gpu.workloadOf(asid).next(
        stream.sm, stream.warp, gpu.sm(stream.sm).workloadRng());
    ++out.instrs;

    vpns.clear();
    std::uint32_t lanes =
        std::min<std::uint32_t>(instr.activeLanes, cfg.warpSize);
    for (std::uint32_t lane = 0; lane < lanes; ++lane) {
        Vpn vpn = geometry.vpnOf(instr.addrs[lane]);
        if (std::find(vpns.begin(), vpns.end(), vpn) == vpns.end())
            vpns.push_back(vpn);
    }
    for (Vpn vpn : vpns) {
        ++out.pagesTouched;
        switch (gpu.engine().functionalTouch(stream.sm,
                                             TranslationKey{asid, vpn})) {
          case TouchResult::L1Hit: ++out.l1TlbHits; break;
          case TouchResult::L2Hit: ++out.l2TlbHits; break;
          case TouchResult::Walk: ++out.walks; break;
        }
    }
}

} // namespace

FfwdStats
fastForward(Gpu &gpu, std::uint64_t instrs, const Gpu::RunLimits &limits)
{
    SW_PROF_SCOPE(prof::Zone::FfwdWarmup);
    SW_ASSERT(gpu.eventQueue().empty(),
              "fast-forward with events still pending");

    const GpuConfig &cfg = gpu.config();
    PageGeometry geometry(cfg.pageBytes);

    // Replicate runSegment()'s active-warp distribution so ffwd advances
    // exactly the streams the detailed segments will run.
    std::vector<std::uint32_t> active(gpu.numSms(), cfg.maxWarpsPerSm);
    if (limits.maxActiveWarps > 0) {
        std::fill(active.begin(), active.end(), 0u);
        for (std::uint64_t k = 0; k < limits.maxActiveWarps; ++k) {
            SmId sm = SmId(k % gpu.numSms());
            if (active[sm] < cfg.maxWarpsPerSm)
                ++active[sm];
        }
    }

    std::vector<Stream> streams;
    for (SmId sm = 0; sm < SmId(gpu.numSms()); ++sm) {
        for (WarpId warp = 0; warp < active[sm]; ++warp)
            streams.push_back({sm, warp});
    }
    SW_ASSERT(!streams.empty(), "fast-forward with no active warps");

    FfwdStats out;
    std::vector<Vpn> vpns;

    // Recorded-order advance (trace replay, v2 traces).  A warm machine's
    // TLB hits come from cross-warp page sharing that lives at the
    // *recorded* relative warp offsets — warps drift thousands of
    // instructions apart as memory stalls land unevenly, and two warps
    // share a page only when their recorded fetch times were close.
    // Advancing streams round-robin aligns every warp at an equal index,
    // a phase relationship the recording never had, and the detailed
    // window that follows starts congested instead of warm.  So replay
    // the recorded global fetch order instead: scan fetchOrder, skip each
    // stream's first streamPos() occurrences (records already consumed by
    // earlier segments), and consume the rest in recorded order, leaving
    // every warp at a time-coherent position.
    // Recorded order only exists for a single recorded machine; tenants of
    // a co-run each replay (or generate) independently via the fallback.
    auto *trace_workload = gpu.numTenants() == 1
        ? dynamic_cast<TraceWorkload *>(&gpu.workload()) : nullptr;
    if (trace_workload != nullptr &&
        !trace_workload->trace().fetchOrder.empty()) {
        const TraceFile &trace = trace_workload->trace();
        std::size_t num = trace.streams.size();
        std::vector<std::uint64_t> occupancy(num, 0);
        std::vector<std::uint64_t> pos(num);
        std::vector<std::uint8_t> activeStream(num, 0);
        std::vector<Stream> byIndex(num);
        for (std::size_t s = 0; s < num; ++s) {
            pos[s] = trace_workload->streamPos(s);
            const TraceStream &stream = trace.streams[s];
            byIndex[s] = {stream.sm, stream.warp};
            activeStream[s] = stream.sm < SmId(gpu.numSms()) &&
                              stream.warp < active[stream.sm];
        }
        for (std::uint32_t s : trace.fetchOrder) {
            if (out.instrs >= instrs)
                break;
            if (!activeStream[s])
                continue;
            if (++occupancy[s] <= pos[s])
                continue;   // consumed by an earlier segment or ffwd
            touchOne(gpu, byIndex[s], geometry, vpns, out);
        }
        // Past the end of the recorded order (drain replay): fall through
        // to round-robin for the remainder.
    }

    while (out.instrs < instrs)
        touchOne(gpu, streams[out.instrs % streams.size()], geometry, vpns,
                 out);
    return out;
}

} // namespace sw
