#include "ckpt/sampling.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"
#include "vm/address.hh"

namespace sw {

namespace {

/** Feature bins per window: hashed page → bin histogram. */
constexpr std::size_t kBins = 64;

/** SplitMix64 finaliser: decorrelates adjacent VPNs across bins. */
std::uint64_t
hashVpn(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

using Feature = std::vector<double>;  // kBins L1-normalised + time dim

double
distanceSq(const Feature &a, const Feature &b)
{
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double diff = a[i] - b[i];
        d += diff * diff;
    }
    return d;
}

} // namespace

SamplingPlan
buildSamplingPlan(const TraceFile &trace, const SamplingOptions &opts)
{
    SW_ASSERT(opts.windowInstrs > 0, "sampling window must be non-empty");
    SW_ASSERT(opts.numClusters > 0, "sampling needs at least one cluster");
    std::uint64_t total = trace.totalInstrs();
    if (total == 0)
        fatal("phase sampling over an empty trace (%s)",
              trace.header.name.c_str());
    std::uint64_t skip = opts.skipInstrs;
    if (skip >= total) {
        fatal("phase sampling skip region (%llu instrs) covers the whole "
              "trace (%llu)",
              static_cast<unsigned long long>(skip),
              static_cast<unsigned long long>(total));
    }

    // Walk the streams in the order execution will consume them — the
    // recorded global fetch order when the trace carries one (v2), the
    // round-robin interleaving otherwise (one instruction per live
    // stream per pass; fastForward() uses the same fallback).  Window
    // boundaries then line up with the execution plan, so the
    // instructions a feature vector summarises are the instructions the
    // detailed window actually runs.
    PageGeometry geometry(opts.pageBytes);
    std::vector<std::size_t> cursor(trace.streams.size(), 0);
    std::vector<Feature> features;
    std::vector<std::uint64_t> window_len;
    Feature current(kBins, 0.0);
    std::uint64_t in_window = 0;
    std::uint64_t consumed = 0;

    auto close_window = [&]() {
        double samples = 0.0;
        for (double bin : current)
            samples += bin;
        if (samples > 0.0) {
            for (double &bin : current)
                bin /= samples;
        }
        features.push_back(current);
        window_len.push_back(in_window);
        std::fill(current.begin(), current.end(), 0.0);
        in_window = 0;
    };

    auto consume_one = [&](std::size_t s) {
        const WarpInstr &instr = trace.streams[s].instrs[cursor[s]++];
        ++consumed;
        if (consumed <= skip)
            return;   // cold-start region: not featurised
        std::uint32_t lanes =
            std::min<std::uint32_t>(instr.activeLanes, 32);
        for (std::uint32_t lane = 0; lane < lanes; ++lane) {
            Vpn vpn = geometry.vpnOf(instr.addrs[lane]);
            current[hashVpn(vpn) % kBins] += 1.0;
        }
        if (++in_window == opts.windowInstrs)
            close_window();
    };

    if (!trace.fetchOrder.empty()) {
        for (std::uint32_t s : trace.fetchOrder)
            consume_one(s);
    } else {
        while (consumed < total) {
            for (std::size_t s = 0; s < trace.streams.size(); ++s) {
                if (cursor[s] < trace.streams[s].instrs.size())
                    consume_one(s);
            }
        }
    }
    if (in_window > 0)
        close_window();

    std::uint64_t num_windows = features.size();

    // Temporal feature (see SamplingOptions::timeFeatureWeight): appended
    // after all windows exist because its scale needs num_windows.  With
    // flat histograms it turns k-means into stratified time sampling;
    // with real phase structure the histogram distance dwarfs it.
    if (opts.timeFeatureWeight > 0.0) {
        for (std::uint64_t w = 0; w < num_windows; ++w) {
            double t = num_windows > 1
                ? double(w) / double(num_windows - 1) : 0.0;
            features[w].push_back(opts.timeFeatureWeight * t);
        }
    }

    std::uint32_t k = std::uint32_t(
        std::min<std::uint64_t>(opts.numClusters, num_windows));

    // k-means-lite: deterministic evenly spaced seeding, fixed iteration
    // count, ties broken toward the lower cluster index.
    std::vector<Feature> centroids;
    centroids.reserve(k);
    for (std::uint32_t c = 0; c < k; ++c)
        centroids.push_back(features[(c * num_windows) / k]);

    std::vector<std::uint32_t> assign(num_windows, 0);
    for (std::uint32_t iter = 0; iter < opts.kmeansIters; ++iter) {
        bool moved = false;
        for (std::uint64_t w = 0; w < num_windows; ++w) {
            double best = std::numeric_limits<double>::infinity();
            std::uint32_t best_c = 0;
            for (std::uint32_t c = 0; c < k; ++c) {
                double d = distanceSq(features[w], centroids[c]);
                if (d < best) {
                    best = d;
                    best_c = c;
                }
            }
            if (assign[w] != best_c) {
                assign[w] = best_c;
                moved = true;
            }
        }
        if (!moved && iter > 0)
            break;
        std::size_t dims = features.empty() ? kBins : features[0].size();
        for (std::uint32_t c = 0; c < k; ++c) {
            Feature sum(dims, 0.0);
            std::uint64_t members = 0;
            for (std::uint64_t w = 0; w < num_windows; ++w) {
                if (assign[w] != c)
                    continue;
                ++members;
                for (std::size_t i = 0; i < dims; ++i)
                    sum[i] += features[w][i];
            }
            // An emptied cluster keeps its centroid; a later iteration
            // (or none) may repopulate it.  Representatives below skip
            // member-less clusters entirely.
            if (members == 0)
                continue;
            for (std::size_t i = 0; i < dims; ++i)
                sum[i] /= double(members);
            centroids[c] = std::move(sum);
        }
    }

    SamplingPlan plan;
    plan.windowInstrs = opts.windowInstrs;
    plan.skipInstrs = skip;
    plan.totalInstrs = total - skip;
    plan.totalWindows = num_windows;
    plan.clusters = k;
    for (std::uint32_t c = 0; c < k; ++c) {
        std::uint64_t members = 0;
        double best = std::numeric_limits<double>::infinity();
        std::uint64_t rep = num_windows;
        for (std::uint64_t w = 0; w < num_windows; ++w) {
            if (assign[w] != c)
                continue;
            ++members;
            double d = distanceSq(features[w], centroids[c]);
            if (d < best) {
                best = d;
                rep = w;
            }
        }
        if (members == 0)
            continue;
        SampleWindow window;
        window.index = rep;
        window.startInstr = skip + rep * opts.windowInstrs;
        window.instrs = window_len[rep];
        window.cluster = c;
        window.weight = double(members) / double(num_windows);
        plan.windows.push_back(window);
    }
    std::sort(plan.windows.begin(), plan.windows.end(),
              [](const SampleWindow &a, const SampleWindow &b) {
                  return a.startInstr < b.startInstr;
              });
    SW_ASSERT(!plan.windows.empty(), "clustering produced no windows");
    return plan;
}

MetricEstimate
weightedEstimate(const std::vector<double> &values,
                 const std::vector<double> &weights)
{
    SW_ASSERT(values.size() == weights.size(),
              "metric/weight vectors differ in size");
    MetricEstimate out;
    double wsum = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        out.mean += values[i] * weights[i];
        wsum += weights[i];
    }
    if (wsum <= 0.0)
        return out;
    out.mean /= wsum;
    double var = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        double diff = values[i] - out.mean;
        var += weights[i] * diff * diff;
    }
    out.spread = std::sqrt(var / wsum);
    return out;
}

} // namespace sw
