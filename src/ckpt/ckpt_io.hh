/**
 * @file
 * Checkpoint serialisation primitives (`softwalker.ckpt/1`).
 *
 * Header-only by design: every component that gains saveState()/
 * restoreState() includes this file without creating a link dependency on
 * the ckpt library (which sits above gpu/core in the dependency order).
 *
 * Layout conventions mirror the `.swtrace` reader (src/trace): fixed-width
 * little-endian integers, length-prefixed strings, and a bounds-checked
 * reader whose every malformed-input path funnels through fatal() with the
 * byte offset — so the failure hook can trap corrupt checkpoints in tests
 * and fuzzing, exactly like the trace decoder.  Unlike the varint-packed
 * trace format, checkpoints favour fixed-width fields: they are written
 * once per run, not once per instruction.
 *
 * Named section markers frame each component's state.  The reader verifies
 * them in order (expectSection), turning any save/restore ordering skew —
 * the classic serialisation bug — into an immediate, located fatal instead
 * of silently mis-assigned state.
 */

#ifndef SW_CKPT_CKPT_IO_HH
#define SW_CKPT_CKPT_IO_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace sw {

/** Serialises checkpoint state into a growable byte buffer. */
class CkptWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buffer_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buffer_.push_back(std::uint8_t(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buffer_.push_back(std::uint8_t(v >> (8 * i)));
    }

    /** Doubles travel as their exact bit pattern (determinism contract). */
    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u32(std::uint32_t(s.size()));
        buffer_.insert(buffer_.end(), s.begin(), s.end());
    }

    /** Open a named section; the reader checks the name and order. */
    void
    section(const char *name)
    {
        str(name);
    }

    void
    latency(const LatencyStat &s)
    {
        u64(s.count);
        u64(s.sum);
        u64(s.minv);
        u64(s.maxv);
    }

    const std::vector<std::uint8_t> &bytes() const { return buffer_; }
    std::size_t size() const { return buffer_.size(); }

  private:
    std::vector<std::uint8_t> buffer_;
};

/**
 * Bounds-checked reader over a checkpoint byte buffer.  Truncation, section
 * skew, and out-of-range counts all funnel through fatal() with the current
 * offset; setFailureHook() can trap these (fuzzing, death tests).
 */
class CkptReader
{
  public:
    CkptReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint8_t
    u8()
    {
        need(1, "u8");
        return data_[offset_++];
    }

    std::uint32_t
    u32()
    {
        need(4, "u32");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(data_[offset_ + i]) << (8 * i);
        offset_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8, "u64");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(data_[offset_ + i]) << (8 * i);
        offset_ += 8;
        return v;
    }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        std::uint32_t len = u32();
        need(len, "string body");
        std::string s(reinterpret_cast<const char *>(data_ + offset_), len);
        offset_ += len;
        return s;
    }

    /** Consume a section marker; fatal if it is not the expected one. */
    void
    expectSection(const char *name)
    {
        std::size_t at = offset_;
        std::string got = str();
        if (got != name) {
            fatal("checkpoint section skew at offset %zu: expected "
                  "\"%s\", found \"%s\"", at, name, got.c_str());
        }
    }

    void
    latency(LatencyStat &s)
    {
        s.count = u64();
        s.sum = u64();
        s.minv = u64();
        s.maxv = u64();
    }

    /**
     * Validate an element count against the bytes actually left, so a
     * corrupt count fatals instead of driving a huge allocation.
     * @param min_elem_bytes smallest possible encoding of one element.
     */
    std::uint64_t
    count(std::uint64_t min_elem_bytes, const char *what)
    {
        std::uint64_t n = u64();
        if (min_elem_bytes > 0 && n > remaining() / min_elem_bytes) {
            fatal("checkpoint %s count %llu at offset %zu exceeds the "
                  "%zu bytes remaining",
                  what, static_cast<unsigned long long>(n), offset_,
                  remaining());
        }
        return n;
    }

    std::size_t offset() const { return offset_; }
    std::size_t remaining() const { return size_ - offset_; }
    bool atEnd() const { return offset_ == size_; }

  private:
    void
    need(std::size_t n, const char *what)
    {
        if (remaining() < n) {
            fatal("checkpoint truncated at offset %zu: need %zu byte(s) "
                  "for %s, have %zu", offset_, n, what, remaining());
        }
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t offset_ = 0;
};

} // namespace sw

#endif // SW_CKPT_CKPT_IO_HH
