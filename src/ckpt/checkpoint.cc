#include "ckpt/checkpoint.hh"

#include <cstdio>
#include <cstring>

#include "ckpt/ckpt_io.hh"
#include "gpu/gpu.hh"
#include "prof/hostprof.hh"
#include "sim/logging.hh"
#include "trace/trace_format.hh"

namespace sw {

std::vector<std::uint8_t>
encodeCheckpoint(const Gpu &gpu, std::uint64_t instrs_fetched)
{
    SW_PROF_SCOPE(prof::Zone::CkptSave);
    CkptWriter w;
    for (char c : kCkptMagic)
        w.u8(std::uint8_t(c));
    w.u32(kCkptVersion);
    w.u64(configDigest(gpu.config()));
    // One workload name per tenant (index == ASID); v1 wrote exactly one.
    w.u32(gpu.numTenants());
    for (Asid asid = 0; asid < gpu.numTenants(); ++asid)
        w.str(gpu.workloadOf(asid).name());
    w.u64(instrs_fetched);
    gpu.saveState(w);
    w.section("end");
    prof::addCheckpointBytes(w.size());
    return w.bytes();
}

CheckpointMeta
decodeCheckpoint(Gpu &gpu, const std::uint8_t *data, std::size_t size,
                 const std::string &context)
{
    SW_PROF_SCOPE(prof::Zone::CkptRestore);
    CkptReader r(data, size);
    char magic[sizeof(kCkptMagic)];
    for (char &c : magic)
        c = char(r.u8());
    if (std::memcmp(magic, kCkptMagic, sizeof(kCkptMagic)) != 0)
        fatal("%s: not a SoftWalker checkpoint (bad magic)",
              context.c_str());
    std::uint32_t version = r.u32();
    if (version != kCkptVersion) {
        fatal("%s: checkpoint format version %u (this build reads %u)",
              context.c_str(), version, kCkptVersion);
    }

    CheckpointMeta meta;
    meta.configDigest = r.u64();
    // Hard check, no unknown-origin escape hatch: a checkpoint restored
    // into a differently-configured machine mis-sizes TLB arrays, cache
    // geometry, and SM counts silently.  Contrast TraceWorkload::
    // checkConfig, which downgrades to a warning for converted traces.
    std::uint64_t expected = configDigest(gpu.config());
    if (meta.configDigest != expected) {
        fatal("%s: checkpoint config digest %016llx does not match this "
              "machine's %016llx; restore requires the exact recording "
              "configuration",
              context.c_str(),
              static_cast<unsigned long long>(meta.configDigest),
              static_cast<unsigned long long>(expected));
    }
    // The digest check above already rejects a tenant-count mismatch
    // (numTenants feeds the digest); this one produces a message naming
    // the address spaces for the common operator error.
    std::uint32_t tenants = r.u32();
    if (tenants != gpu.numTenants()) {
        fatal("%s: checkpoint holds %u tenant address spaces but this "
              "machine has %u",
              context.c_str(), tenants, gpu.numTenants());
    }
    for (Asid asid = 0; asid < tenants; ++asid) {
        std::string name = r.str();
        if (asid == 0)
            meta.workloadName = name;
        if (name != gpu.workloadOf(asid).name()) {
            fatal("%s: checkpoint of workload \"%s\" (ASID %u) restored "
                  "against \"%s\"",
                  context.c_str(), name.c_str(), asid,
                  gpu.workloadOf(asid).name().c_str());
        }
    }
    meta.instrsFetched = r.u64();
    gpu.restoreState(r);
    r.expectSection("end");
    if (!r.atEnd()) {
        fatal("%s: %zu trailing byte(s) after the end marker",
              context.c_str(), r.remaining());
    }
    meta.fileBytes = size;
    prof::addCheckpointBytes(size);
    return meta;
}

CheckpointMeta
saveCheckpoint(const Gpu &gpu, std::uint64_t instrs_fetched,
               const std::string &path)
{
    std::vector<std::uint8_t> bytes = encodeCheckpoint(gpu, instrs_fetched);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open checkpoint file %s for writing", path.c_str());
    std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    if (std::fclose(f) != 0 || written != bytes.size())
        fatal("short write to checkpoint file %s", path.c_str());

    CheckpointMeta meta;
    meta.configDigest = configDigest(gpu.config());
    meta.workloadName = gpu.workload().name();
    meta.instrsFetched = instrs_fetched;
    meta.fileBytes = bytes.size();
    return meta;
}

CheckpointMeta
restoreCheckpoint(Gpu &gpu, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open checkpoint file %s", path.c_str());
    std::fseek(f, 0, SEEK_END);
    long len = std::ftell(f);
    if (len < 0) {
        std::fclose(f);
        fatal("cannot size checkpoint file %s", path.c_str());
    }
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(len));
    std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size())
        fatal("short read from checkpoint file %s", path.c_str());
    return decodeCheckpoint(gpu, bytes.data(), bytes.size(), path);
}

std::uint64_t
checkpointBytesWritten()
{
    return prof::checkpointBytes();
}

} // namespace sw
