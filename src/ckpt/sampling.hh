/**
 * @file
 * SimPoint-style phase sampling over recorded `.swtrace` workloads.
 *
 * Long traces are mostly redundant: irregular GPU kernels cycle through a
 * small number of access *phases* (hot-window working sets, pointer-chase
 * bursts, streaming sweeps).  The sampling pass splits the recorded
 * instruction stream into fixed-size windows, summarises each window by a
 * hashed page-access histogram (the translation-relevant analogue of
 * SimPoint basic-block vectors), clusters the windows with a small exact
 * k-means, and picks one representative window per cluster.  Simulating
 * only the representatives — fast-forwarding functionally across the
 * gaps — reconstructs whole-run metrics as cluster-weighted means, with
 * the weighted spread across representatives as the error bar.
 *
 * Everything here is deterministic: centroids seed from evenly spaced
 * windows, iteration count is fixed, and no wall-clock or ambient
 * randomness is consulted, so the same trace always yields the same plan
 * (tests/ckpt/test_sampling.cc holds this down).
 */

#ifndef SW_CKPT_SAMPLING_HH
#define SW_CKPT_SAMPLING_HH

#include <cstdint>
#include <vector>

#include "trace/trace_format.hh"

namespace sw {

/** Tuning knobs for buildSamplingPlan(). */
struct SamplingOptions
{
    /** Warp instructions per window (phase granularity). */
    std::uint64_t windowInstrs = 2000;
    /** Clusters k; the plan simulates one representative per cluster. */
    std::uint32_t numClusters = 4;
    /** Page size used to reduce lane addresses to pages. */
    std::uint64_t pageBytes = 4096;
    /** k-means refinement iterations (fixed for determinism). */
    std::uint32_t kmeansIters = 16;
    /**
     * Detailed (timed, unmeasured) instructions run before each window to
     * re-establish in-flight contention — MSHR occupancy, queue depths,
     * outstanding walks — that functional fast-forward cannot carry
     * across a gap.  Carved out of the gap preceding the window (clamped
     * to the gap length), and counted against the detail-ratio budget.
     */
    std::uint64_t windowWarmupInstrs = 1000;
    /**
     * Leading instructions excluded from sampling — the cold-start
     * TLB-fill transient, matching the warmup a full reference run
     * discards.  The transient's pages look identical to steady state in
     * histogram space, so clustering cannot separate it; excluding it
     * (and measuring the reference with the same warmup) is the honest
     * comparison.  Execution fast-forwards through the region.
     */
    std::uint64_t skipInstrs = 0;
    /**
     * Weight of the temporal feature dimension appended to each window's
     * page-access histogram before clustering.  The histogram is
     * L1-normalised (bins sum to 1), and the extra dimension is
     * timeFeatureWeight * windowIndex / (numWindows - 1), so two windows
     * at opposite ends of the trace differ by timeFeatureWeight in that
     * coordinate.  Why it exists: a workload whose *footprint* is
     * stationary can still drift in *machine state* (TLBs warm
     * monotonically, walk counts fall), and a pure feature-space
     * clustering then sees one giant phase and parks every representative
     * wherever the seeding landed.  The temporal coordinate makes
     * clustering degenerate to stratified (evenly spaced, uniformly
     * weighted) time sampling exactly when the histograms carry no
     * signal, while genuinely distinct footprints — whose histogram
     * distance approaches sqrt(2) — still dominate the metric.  Zero
     * disables it (pure SimPoint behaviour).
     */
    double timeFeatureWeight = 0.5;
    /**
     * Per-warp restart stagger (cycles) for each detailed segment; warp k
     * begins k * restartSkewCycles after the segment starts.  Off by
     * default: replay fidelity comes from restoring the *recorded* phase
     * relationships (the trace's fetch order, which fast-forward
     * replays), and imposing an artificial stagger on top of coherent
     * positions perturbs the trajectory away from the recording rather
     * than toward it.  Kept as an experiment knob for workloads whose
     * restart transient benefits from de-synchronised warp starts.
     */
    std::uint64_t restartSkewCycles = 0;
};

/** One representative window the detailed simulation must cover. */
struct SampleWindow
{
    std::uint64_t index = 0;       ///< window ordinal in stream order
    std::uint64_t startInstr = 0;  ///< first warp instruction (inclusive)
    std::uint64_t instrs = 0;      ///< window length (last may be short)
    std::uint32_t cluster = 0;
    double weight = 0.0;           ///< cluster windows / total windows
};

/** Output of the clustering pass. */
struct SamplingPlan
{
    std::uint64_t windowInstrs = 0;
    /** Leading instructions excluded from sampling (cold-start region). */
    std::uint64_t skipInstrs = 0;
    /** Instructions in the sampled region (trace total minus skip). */
    std::uint64_t totalInstrs = 0;
    std::uint64_t totalWindows = 0;
    std::uint32_t clusters = 0;
    /**
     * Representatives sorted by startInstr; weights sum to 1.  startInstr
     * is absolute within the trace (skipInstrs included), so
     * skipInstrs <= startInstr and startInstr + instrs <=
     * skipInstrs + totalInstrs.
     */
    std::vector<SampleWindow> windows;

    /** Detailed instructions the plan simulates (Σ window lengths). */
    std::uint64_t
    detailedInstrs() const
    {
        std::uint64_t n = 0;
        for (const SampleWindow &w : windows)
            n += w.instrs;
        return n;
    }
};

/**
 * Cluster @p trace's windows and pick representatives.  The stream order
 * is the round-robin interleaving of the per-(sm, warp) streams — the
 * same order fastForward() and a contention-free detailed run consume
 * them.  fatal() when the trace is empty.
 */
SamplingPlan buildSamplingPlan(const TraceFile &trace,
                               const SamplingOptions &opts);

/** A whole-run metric reconstructed from representative windows. */
struct MetricEstimate
{
    double mean = 0.0;    ///< cluster-weighted mean
    double spread = 0.0;  ///< weighted std deviation across windows
};

/** Weighted mean and spread of per-window metric @p values. */
MetricEstimate weightedEstimate(const std::vector<double> &values,
                                const std::vector<double> &weights);

} // namespace sw

#endif // SW_CKPT_SAMPLING_HH
