#include "sim/logging.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace sw {

LogLevel
logLevelFromEnv()
{
    const char *env = std::getenv("SW_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::Info;
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "quiet") == 0 ||
        std::strcmp(env, "error") == 0) {
        return LogLevel::Quiet;
    }
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "2") == 0 || std::strcmp(env, "info") == 0 ||
        std::strcmp(env, "verbose") == 0) {
        return LogLevel::Info;
    }
    std::fprintf(stderr, "warn: unrecognised SW_LOG_LEVEL '%s' "
                 "(expected 0/quiet, 1/warn, 2/info); defaulting to info\n",
                 env);
    return LogLevel::Info;
}

namespace {

// SweepRunner workers log and (on a bug) fail concurrently, so the level
// is an atomic and the hook is handed over under a mutex.  warn()/inform()
// stay lock-free: each emits its message as one fprintf, which the C
// standard already makes atomic with respect to other stream operations.
std::atomic<LogLevel> currentLevel{logLevelFromEnv()};
std::mutex failureHookMutex;
FailureHookFn failureHook;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

/**
 * The single terminating sink: every panic/fatal/assert/audit failure ends
 * here, so diagnostics handling lives in exactly one place.
 */
[[noreturn]] void
failureSink(const char *kind, const std::string &msg, bool abort_process)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
    FailureHookFn hook;
    {
        std::lock_guard<std::mutex> lock(failureHookMutex);
        hook = failureHook;
    }
    if (hook)
        hook(kind, msg);
    if (abort_process)
        std::abort();
    std::exit(1);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    failureSink("panic", msg, /*abort_process=*/true);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    failureSink("fatal", msg, /*abort_process=*/false);
}

void
warn(const char *fmt, ...)
{
    if (currentLevel.load(std::memory_order_relaxed) < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (currentLevel.load(std::memory_order_relaxed) < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
setLogLevel(LogLevel level)
{
    currentLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return currentLevel.load(std::memory_order_relaxed);
}

void
setVerbose(bool verbose)
{
    // Legacy switch used by benches: toggles inform() only.
    setLogLevel(verbose ? LogLevel::Info : LogLevel::Warn);
}

void
setFailureHook(FailureHookFn hook)
{
    std::lock_guard<std::mutex> lock(failureHookMutex);
    failureHook = std::move(hook);
}

void
panicAssert(const char *cond, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    failureSink("panic",
                strprintf("assertion '%s' failed: %s", cond, msg.c_str()),
                /*abort_process=*/true);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace sw
