#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace sw {

namespace {

bool verboseEnabled = true;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

void
panicAssert(const char *cond, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: assertion '%s' failed: %s\n", cond,
                 msg.c_str());
    std::abort();
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace sw
