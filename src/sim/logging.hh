/**
 * @file
 * Error and status reporting helpers, following the gem5 convention:
 * panic() for simulator bugs, fatal() for user/configuration errors,
 * warn()/inform() for status messages that never stop the simulation.
 *
 * Every terminating path (panic, fatal, SW_ASSERT, audit failures) funnels
 * through a single failure sink so tools — and tests — can intercept all of
 * them in one place (setFailureHook()).
 */

#ifndef SW_SIM_LOGGING_HH
#define SW_SIM_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <string>

namespace sw {

/** Verbosity levels for the status channels. */
enum class LogLevel : int
{
    Quiet = 0,   ///< errors only: warn() and inform() are suppressed
    Warn = 1,    ///< errors + warn()
    Info = 2,    ///< everything (default)
};

/**
 * Abort the simulation because of an internal invariant violation.
 * Calls std::abort() so a core dump / debugger trap is possible.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate the simulation because of a user error (bad configuration,
 * invalid arguments). Exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but non-fatal condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Set the verbosity threshold.  The initial value comes from the
 * SW_LOG_LEVEL environment variable ("0"/"quiet", "1"/"warn",
 * "2"/"info"); unset or unrecognised values default to Info.
 * Thread-safe: the level is atomic, so concurrent SweepRunner workers
 * may log while another thread adjusts verbosity.
 */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/**
 * Parse SW_LOG_LEVEL from the current environment (warns on an
 * unrecognised value).  Called once at start-up for the initial
 * threshold; exposed so tests can cover the parsing.
 */
LogLevel logLevelFromEnv();

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/**
 * Observer invoked by the failure sink just before the process terminates,
 * with the failure kind ("panic" or "fatal") and the formatted message.
 * Tests and external harnesses use it to capture diagnostics; it must not
 * assume the process survives. Pass nullptr to clear.  Installation and
 * invocation are mutex-guarded so a hook may be (re)set while SweepRunner
 * workers are running.
 */
using FailureHookFn = std::function<void(const char *kind,
                                         const std::string &msg)>;
void setFailureHook(FailureHookFn hook);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Backend of SW_ASSERT: panic with the failed condition text. */
[[noreturn]] void panicAssert(const char *cond, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace sw

/**
 * Assert a simulator invariant with a formatted message.  Unlike assert(),
 * stays active in release builds: model correctness depends on it.
 */
#define SW_ASSERT(cond, fmt, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sw::panicAssert(#cond, fmt __VA_OPT__(,) __VA_ARGS__);        \
        }                                                                   \
    } while (0)

#endif // SW_SIM_LOGGING_HH
