/**
 * @file
 * Error and status reporting helpers, following the gem5 convention:
 * panic() for simulator bugs, fatal() for user/configuration errors,
 * warn()/inform() for status messages that never stop the simulation.
 */

#ifndef SW_SIM_LOGGING_HH
#define SW_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace sw {

/**
 * Abort the simulation because of an internal invariant violation.
 * Calls std::abort() so a core dump / debugger trap is possible.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate the simulation because of a user error (bad configuration,
 * invalid arguments). Exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but non-fatal condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Backend of SW_ASSERT: panic with the failed condition text. */
[[noreturn]] void panicAssert(const char *cond, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace sw

/**
 * Assert a simulator invariant with a formatted message.  Unlike assert(),
 * stays active in release builds: model correctness depends on it.
 */
#define SW_ASSERT(cond, fmt, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sw::panicAssert(#cond, fmt __VA_OPT__(,) __VA_ARGS__);        \
        }                                                                   \
    } while (0)

#endif // SW_SIM_LOGGING_HH
