#include "sim/config.hh"

#include "sim/logging.hh"

namespace sw {

const char *
toString(TranslationMode mode)
{
    switch (mode) {
      case TranslationMode::HardwarePtw: return "hw-ptw";
      case TranslationMode::SoftWalker:  return "softwalker";
      case TranslationMode::Hybrid:      return "hybrid";
      case TranslationMode::Ideal:       return "ideal";
    }
    return "?";
}

const char *
toString(PageTableKind kind)
{
    switch (kind) {
      case PageTableKind::Radix4: return "radix4";
      case PageTableKind::Hashed: return "hashed";
    }
    return "?";
}

const char *
toString(DistributorPolicy policy)
{
    switch (policy) {
      case DistributorPolicy::RoundRobin: return "round-robin";
      case DistributorPolicy::Random:     return "random";
      case DistributorPolicy::StallAware: return "stall-aware";
    }
    return "?";
}

const char *
toString(PwArbitration arbitration)
{
    switch (arbitration) {
      case PwArbitration::Demand:           return "demand";
      case PwArbitration::TenantRoundRobin: return "tenant-rr";
    }
    return "?";
}

std::uint32_t
GpuConfig::pageTableLevels() const
{
    // 49-bit virtual addresses (GP100 MMU format). 64 KB pages leave a
    // 33-bit VPN covered by four radix levels; 2 MB pages leave a 28-bit
    // VPN covered by three.
    return pageBytes >= 2ull * 1024 * 1024 ? 3 : 4;
}

void
GpuConfig::validate() const
{
    if (numSms == 0 || maxWarpsPerSm == 0 || warpSize == 0)
        fatal("GpuConfig: core organisation must be non-zero");
    if (warpSize > 32)
        fatal("GpuConfig: warpSize > 32 unsupported");
    if (l2TlbEntries % l2TlbWays != 0)
        fatal("GpuConfig: L2 TLB entries (%u) not divisible by ways (%u)",
              l2TlbEntries, l2TlbWays);
    if (pageBytes != 64ull * 1024 && pageBytes != 2ull * 1024 * 1024)
        fatal("GpuConfig: page size must be 64KB or 2MB");
    if (lineBytes % sectorBytes != 0)
        fatal("GpuConfig: line size not a multiple of sector size");
    if (mode != TranslationMode::HardwarePtw &&
        mode != TranslationMode::Ideal && softPwbEntries == 0) {
        fatal("GpuConfig: SoftWalker mode requires SoftPWB entries");
    }
    if (mode == TranslationMode::HardwarePtw && numPtws == 0)
        fatal("GpuConfig: hardware mode requires at least one PTW");
    if (inTlbMshrMax > l2TlbEntries)
        fatal("GpuConfig: In-TLB MSHR capacity (%u) exceeds L2 TLB size (%u)",
              inTlbMshrMax, l2TlbEntries);
    if (numTenants == 0)
        fatal("GpuConfig: at least one tenant required");
    if (numTenants > numSms)
        fatal("GpuConfig: %u tenants cannot slice %u SMs", numTenants,
              numSms);
    if (migPartitioning && numTenants > l2TlbWays) {
        fatal("GpuConfig: MIG partitioning needs a way per tenant "
              "(%u tenants, %u ways)", numTenants, l2TlbWays);
    }
    if (l2SubEntries == 0 || (l2SubEntries & (l2SubEntries - 1)) != 0)
        fatal("GpuConfig: l2SubEntries must be a power of two");
    if (l2SubEntries > 1) {
        if (inTlbMshrMax > 0) {
            fatal("GpuConfig: the sub-entry L2 TLB and the In-TLB MSHR "
                  "are mutually exclusive");
        }
        if (l2TlbEntries % (l2SubEntries * l2TlbWays) != 0) {
            fatal("GpuConfig: L2 TLB entries (%u) not divisible by "
                  "l2SubEntries*ways (%u*%u)", l2TlbEntries, l2SubEntries,
                  l2TlbWays);
        }
    }
    if (l2SubEntrySharing && l2SubEntries <= 1)
        fatal("GpuConfig: sub-entry sharing requires l2SubEntries > 1");
}

GpuConfig
makeDefaultConfig()
{
    return GpuConfig{};
}

GpuConfig
makeSoftWalkerConfig(TranslationMode mode, std::uint32_t in_tlb_mshrs)
{
    if (mode != TranslationMode::SoftWalker &&
        mode != TranslationMode::Hybrid) {
        fatal("makeSoftWalkerConfig: mode must be SoftWalker or Hybrid");
    }
    GpuConfig cfg;
    cfg.mode = mode;
    cfg.inTlbMshrMax = in_tlb_mshrs;
    return cfg;
}

Asid
tenantOfSm(const GpuConfig &cfg, SmId sm)
{
    SW_ASSERT(sm < cfg.numSms, "SM id out of range");
    if (cfg.numTenants <= 1)
        return 0;
    // Inverse of tenantSmRange's floor slicing: the last tenant whose
    // slice starts at or before sm.
    std::uint64_t t = (std::uint64_t(sm) * cfg.numTenants) / cfg.numSms;
    while (t + 1 < cfg.numTenants &&
           (std::uint64_t(t + 1) * cfg.numSms) / cfg.numTenants <= sm)
        ++t;
    while (t > 0 && (std::uint64_t(t) * cfg.numSms) / cfg.numTenants > sm)
        --t;
    return static_cast<Asid>(t);
}

std::pair<SmId, std::uint32_t>
tenantSmRange(const GpuConfig &cfg, Asid asid)
{
    SW_ASSERT(asid < cfg.numTenants, "tenant id out of range");
    std::uint32_t t = cfg.numTenants;
    SmId begin = SmId((std::uint64_t(asid) * cfg.numSms) / t);
    SmId end = SmId((std::uint64_t(asid + 1) * cfg.numSms) / t);
    return {begin, end - begin};
}

std::pair<std::uint32_t, std::uint32_t>
tenantWayRange(const GpuConfig &cfg, Asid asid)
{
    SW_ASSERT(asid < cfg.numTenants, "tenant id out of range");
    if (!cfg.migPartitioning || cfg.numTenants <= 1)
        return {0, cfg.l2TlbWays};
    std::uint32_t t = cfg.numTenants;
    std::uint32_t begin =
        std::uint32_t((std::uint64_t(asid) * cfg.l2TlbWays) / t);
    std::uint32_t end =
        std::uint32_t((std::uint64_t(asid + 1) * cfg.l2TlbWays) / t);
    return {begin, end - begin};
}

void
scalePtwSubsystem(GpuConfig &cfg, std::uint32_t num_ptws,
                  bool scale_mshrs, bool scale_pwb)
{
    SW_ASSERT(num_ptws > 0, "cannot scale to zero PTWs");
    double factor = double(num_ptws) / 32.0;
    cfg.numPtws = num_ptws;
    if (scale_pwb) {
        cfg.pwbEntries =
            static_cast<std::uint32_t>(std::max(1.0, 64.0 * factor));
    }
    if (scale_mshrs) {
        cfg.l2TlbMshrs =
            static_cast<std::uint32_t>(std::max(1.0, 128.0 * factor));
    }
}

} // namespace sw
