/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Every stochastic element of the simulator (workload address streams,
 * replacement tie-breaks, distributor policies) draws from an explicitly
 * seeded Rng so that every experiment is exactly reproducible.
 */

#ifndef SW_SIM_RNG_HH
#define SW_SIM_RNG_HH

#include <cstdint>

namespace sw {

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialise the state from a 64-bit seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state)
            word = splitmix64(seed);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t
    range(std::uint64_t bound)
    {
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // the bounds used by the simulator.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Snapshot the raw generator state (checkpointing). */
    void
    snapshot(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state[i];
    }

    /** Restore a state captured by snapshot(). */
    void
    restore(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            state[i] = in[i];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state[4];
};

} // namespace sw

#endif // SW_SIM_RNG_HH
