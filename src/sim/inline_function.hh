/**
 * @file
 * InlineFunction: a move-only callable wrapper with a fixed inline capture
 * buffer, built for the event-queue hot path.
 *
 * std::function heap-allocates any capture larger than its tiny SBO
 * (16 bytes on libstdc++), which puts a malloc/free pair on the critical
 * path of every scheduled event.  InlineFunction stores captures up to
 * `Capacity` bytes directly inside the object — the event heap's vector
 * then holds the whole closure by value and scheduling allocates nothing.
 *
 * Oversized captures still work: they spill to a thread-local slab pool
 * (power-of-two size classes, freelist-recycled), so even the fallback
 * path avoids the general-purpose allocator after warmup.  The pool is
 * thread-local on purpose — each SweepRunner worker drives its own
 * EventQueue, and lock-free-by-construction beats lock-free-by-cleverness.
 *
 * Only what the event queue needs is implemented: construct from a
 * callable, move, invoke, destroy.  No copy (events fire once; captures
 * may hold move-only state), no allocator hooks, no target_type().
 */

#ifndef SW_SIM_INLINE_FUNCTION_HH
#define SW_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/logging.hh"

namespace sw {

namespace detail {

/**
 * Thread-local freelist allocator for captures that do not fit inline.
 * Blocks are rounded to a power-of-two class and recycled forever; the
 * per-thread arena is released when the thread exits.  Requests beyond
 * the largest class fall through to operator new.
 */
class SlabPool
{
  public:
    static void *
    allocate(std::size_t bytes)
    {
        int cls = classOf(bytes);
        if (cls < 0)
            return ::operator new(bytes);
        Arena &arena = local();
        Node *&head = arena.free[cls];
        if (head) {
            Node *node = head;
            head = node->next;
            return node;
        }
        return ::operator new(std::size_t(1) << (kMinShift + cls));
    }

    static void
    deallocate(void *ptr, std::size_t bytes)
    {
        if (!ptr)
            return;
        int cls = classOf(bytes);
        if (cls < 0) {
            ::operator delete(ptr);
            return;
        }
        Arena &arena = local();
        Node *node = static_cast<Node *>(ptr);
        node->next = arena.free[cls];
        arena.free[cls] = node;
    }

    /** Blocks currently parked on this thread's freelists (tests). */
    static std::size_t
    freeBlocks()
    {
        std::size_t n = 0;
        for (Node *node : local().free)
            for (; node; node = node->next)
                ++n;
        return n;
    }

  private:
    static constexpr int kMinShift = 6;    ///< smallest class: 64 bytes
    static constexpr int kNumClasses = 5;  ///< 64..1024 bytes

    struct Node
    {
        Node *next;
    };

    struct Arena
    {
        Node *free[kNumClasses] = {};

        ~Arena()
        {
            for (Node *&head : free) {
                while (head) {
                    Node *node = head;
                    head = node->next;
                    ::operator delete(node);
                }
            }
        }
    };

    /** Size class index for @p bytes, or -1 for "use operator new". */
    static int
    classOf(std::size_t bytes)
    {
        std::size_t size = std::size_t(1) << kMinShift;
        for (int cls = 0; cls < kNumClasses; ++cls, size <<= 1) {
            if (bytes <= size)
                return cls;
        }
        return -1;
    }

    static Arena &
    local()
    {
        static thread_local Arena arena;
        return arena;
    }
};

} // namespace detail

template <typename Sig, std::size_t Capacity>
class InlineFunction; // undefined; only the R(Args...) partial below exists

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    static constexpr std::size_t capacity() { return Capacity; }

    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename Fn = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<Fn, InlineFunction> &&
                  std::is_invocable_r_v<R, Fn &, Args...>>>
    InlineFunction(F &&f)
    {
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            invoke_ = &inlineInvoke<Fn>;
            manage_ = &inlineManage<Fn>;
        } else {
            void *mem = detail::SlabPool::allocate(sizeof(Fn));
            Fn *obj = ::new (mem) Fn(std::forward<F>(f));
            std::memcpy(buf, &obj, sizeof obj);
            invoke_ = &heapInvoke<Fn>;
            manage_ = &heapManage<Fn>;
        }
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { destroy(); }

    explicit operator bool() const noexcept { return invoke_ != nullptr; }

    R
    operator()(Args... args)
    {
        SW_ASSERT(invoke_ != nullptr, "empty InlineFunction invoked");
        return invoke_(buf, std::forward<Args>(args)...);
    }

    /** True when the capture spilled to the slab pool (tests/benches). */
    bool
    onHeap() const noexcept
    {
        if (!manage_)
            return false;
        bool heap = false;
        manage_(const_cast<unsigned char *>(buf), &heap, Op::QueryHeap);
        return heap;
    }

    /** Whether a callable of type @p Fn would be stored inline. */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= Capacity &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    enum class Op
    {
        MoveTo,     ///< move-construct into dest, destroy source
        Destroy,    ///< destroy source
        QueryHeap,  ///< write bool "lives on the slab" into dest
    };

    using InvokeFn = R (*)(void *, Args &&...);
    using ManageFn = void (*)(void *self, void *dest, Op op);

    template <typename Fn>
    static R
    inlineInvoke(void *storage, Args &&...args)
    {
        return (*static_cast<Fn *>(storage))(std::forward<Args>(args)...);
    }

    template <typename Fn>
    static void
    inlineManage(void *self, void *dest, Op op)
    {
        Fn *obj = static_cast<Fn *>(self);
        switch (op) {
          case Op::MoveTo:
            ::new (dest) Fn(std::move(*obj));
            obj->~Fn();
            break;
          case Op::Destroy:
            obj->~Fn();
            break;
          case Op::QueryHeap:
            *static_cast<bool *>(dest) = false;
            break;
        }
    }

    template <typename Fn>
    static R
    heapInvoke(void *storage, Args &&...args)
    {
        Fn *obj;
        std::memcpy(&obj, storage, sizeof obj);
        return (*obj)(std::forward<Args>(args)...);
    }

    template <typename Fn>
    static void
    heapManage(void *self, void *dest, Op op)
    {
        Fn *obj;
        std::memcpy(&obj, self, sizeof obj);
        switch (op) {
          case Op::MoveTo:
            // The capture stays put; only the pointer changes hands.
            std::memcpy(dest, &obj, sizeof obj);
            break;
          case Op::Destroy:
            obj->~Fn();
            detail::SlabPool::deallocate(obj, sizeof(Fn));
            break;
          case Op::QueryHeap:
            *static_cast<bool *>(dest) = true;
            break;
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        if (other.invoke_) {
            other.manage_(other.buf, buf, Op::MoveTo);
            invoke_ = other.invoke_;
            manage_ = other.manage_;
            other.invoke_ = nullptr;
            other.manage_ = nullptr;
        }
    }

    void
    destroy() noexcept
    {
        if (manage_) {
            manage_(buf, nullptr, Op::Destroy);
            invoke_ = nullptr;
            manage_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf[Capacity];
    InvokeFn invoke_ = nullptr;
    ManageFn manage_ = nullptr;
};

} // namespace sw

#endif // SW_SIM_INLINE_FUNCTION_HH
