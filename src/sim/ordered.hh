#pragma once

// Deterministic views over unordered containers.
//
// The simulator's fingerprint contracts (field-identical runs across
// SW_JOBS settings, record/replay, audit builds) forbid letting hash
// iteration order reach any observable output.  When code genuinely
// needs to walk an unordered_map/set — reporting, audits, end-of-sim
// sweeps — it must walk a sorted snapshot instead.  sortedKeys() is the
// sanctioned primitive for that: the only place in the tree allowed to
// iterate the container directly, because the order it observes never
// escapes (the keys are sorted before being returned).
//
// Static analysis: softwalker-nondeterministic-iteration flags direct
// iteration over unordered containers in src/; call sites should use
// this helper rather than carrying their own NOLINT.

#include <algorithm>
#include <vector>

namespace sw {

/// Snapshot the keys of an associative container and return them sorted.
/// O(n log n); intended for audit/report paths, not per-event hot paths.
template <typename Map>
auto
sortedKeys(const Map &map)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(map.size());
    // Order does not escape: keys are sorted before being returned.
    // NOLINTNEXTLINE(softwalker-nondeterministic-iteration)
    for (const auto &entry : map)
        keys.push_back(entry.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

/// Snapshot the elements of an unordered set and return them sorted.
template <typename Set>
auto
sortedValues(const Set &set)
{
    std::vector<typename Set::key_type> values;
    values.reserve(set.size());
    // Order does not escape: values are sorted before being returned.
    // NOLINTNEXTLINE(softwalker-nondeterministic-iteration)
    for (const auto &value : set)
        values.push_back(value);
    std::sort(values.begin(), values.end());
    return values;
}

} // namespace sw
