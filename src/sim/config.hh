/**
 * @file
 * Simulated GPU configuration.
 *
 * Defaults reproduce Table 3 of the paper (an RTX 3070-like GPU: 46 SMs,
 * 1500 MHz, two-level TLBs, 32 hardware page-table walkers, GDDR6).
 * Every experiment harness starts from makeDefaultConfig() and overrides the
 * knobs its sweep varies.
 */

#ifndef SW_SIM_CONFIG_HH
#define SW_SIM_CONFIG_HH

#include <cstdint>
#include <string>
#include <utility>

#include "check/audit.hh"
#include "sim/types.hh"

namespace sw {

/** Which engine resolves L2 TLB misses. */
enum class TranslationMode
{
    HardwarePtw,   ///< Baseline: fixed pool of hardware walkers.
    SoftWalker,    ///< All walks handled by PW Warps on the SMs.
    Hybrid,        ///< HW walkers first; overflow goes to PW Warps (§5.4).
    Ideal,         ///< Unbounded walkers and MSHRs (upper bound).
};

/** Page-table organisation. */
enum class PageTableKind
{
    Radix4,        ///< Four-level radix table (baseline, §2.1).
    Hashed,        ///< Fixed-size hashed page table (FS-HPT baseline).
};

/** Request Distributor SM-selection policy (§6.3, Fig 26). */
enum class DistributorPolicy
{
    RoundRobin,    ///< Default (paper's choice).
    Random,
    StallAware,    ///< Prefer the SM with the most stalled warps.
};

/**
 * How SoftWalker arbitrates PW-Warp capacity across tenants when software
 * walks queue behind a full distributor.
 */
enum class PwArbitration
{
    Demand,           ///< Single global FIFO (the single-tenant behaviour).
    TenantRoundRobin, ///< Per-tenant queues drained round-robin.
};

const char *toString(TranslationMode mode);
const char *toString(PageTableKind kind);
const char *toString(DistributorPolicy policy);
const char *toString(PwArbitration arbitration);

/** Full simulated-machine configuration (Table 3 defaults). */
struct GpuConfig
{
    // ---- Core organisation ------------------------------------------
    std::uint32_t numSms = 46;
    std::uint32_t maxWarpsPerSm = 48;
    std::uint32_t warpSize = 32;
    double clockGhz = 1.5;

    // ---- L1 TLB (per SM, fully associative) -------------------------
    std::uint32_t l1TlbEntries = 32;
    Cycle l1TlbLatency = 10;
    std::uint32_t l1TlbMshrs = 32;
    std::uint32_t l1TlbMergesPerMshr = 192;

    // ---- L2 TLB (shared, 16-way) ------------------------------------
    std::uint32_t l2TlbEntries = 1024;
    std::uint32_t l2TlbWays = 16;
    Cycle l2TlbLatency = 80;
    std::uint32_t l2TlbMshrs = 128;
    std::uint32_t l2TlbMergesPerMshr = 46;

    // ---- Data caches --------------------------------------------------
    std::uint64_t l1dBytes = 128 * 1024;      ///< per SM
    Cycle l1dLatency = 40;
    std::uint32_t l1dWays = 8;
    std::uint64_t l2dBytes = 4ull * 1024 * 1024;
    Cycle l2dLatency = 180;
    std::uint32_t l2dWays = 16;
    std::uint32_t lineBytes = 128;
    std::uint32_t sectorBytes = 32;
    std::uint32_t l1dMshrs = 256;             ///< per SM
    /** Aggregate across the banked L2 slices (32 slices x 128). */
    std::uint32_t l2dMshrs = 4096;

    // ---- DRAM (GDDR6, 16 channels, 448 GB/s aggregate) ----------------
    std::uint32_t dramChannels = 16;
    Cycle dramLatency = 160;                  ///< access latency per request
    Cycle dramCyclesPerSector = 2;            ///< channel occupancy per 32 B

    // ---- Virtual memory ------------------------------------------------
    std::uint64_t pageBytes = 64 * 1024;      ///< base page (64 KB)
    PageTableKind pageTableKind = PageTableKind::Radix4;
    std::uint32_t pwcEntries = 32;            ///< page walk cache
    Cycle pwcLatency = 4;

    // ---- Hardware page-walk subsystem ----------------------------------
    std::uint32_t numPtws = 32;
    std::uint32_t pwbEntries = 64;            ///< page walk buffer capacity
    std::uint32_t pwbPorts = 1;               ///< enq+deq bandwidth per cycle
    bool nhaCoalescing = false;               ///< NHA baseline (§2.3)

    // ---- SoftWalker ------------------------------------------------------
    TranslationMode mode = TranslationMode::HardwarePtw;
    std::uint32_t pwWarpThreads = 32;         ///< lanes per PW Warp
    std::uint32_t softPwbEntries = 32;        ///< SoftPWB entries per SM
    /**
     * In-TLB MSHR capacity; 0 (the baseline default) disables it.
     * SoftWalker configurations enable up to 1024 entries (Table 3).
     */
    std::uint32_t inTlbMshrMax = 0;
    DistributorPolicy distributorPolicy = DistributorPolicy::RoundRobin;
    /** SM <-> L2 TLB communication latency; 0 means "same as L2 TLB". */
    Cycle commLatency = 0;

    // ---- Multi-tenancy ---------------------------------------------------
    /**
     * Number of co-resident address spaces (tenants).  1 (the default)
     * is the single-tenant machine; every multi-tenant structure then
     * degenerates to the pre-ASID behaviour bit-for-bit.  Tenants own
     * contiguous SM slices: tenant t runs on SMs
     * [t*numSms/T, (t+1)*numSms/T).
     */
    std::uint32_t numTenants = 1;
    /**
     * MIG-style static partitioning: in addition to the SM slices, carve
     * the shared L2 TLB into per-tenant way slices (victim selection is
     * confined to a tenant's ways; lookups still scan every way) and pin
     * software page walks to the requesting tenant's own SMs.
     */
    bool migPartitioning = false;
    /**
     * Sub-entries per L2 TLB tag (Li et al.'s MIG TLB, PAPERS.md): one tag
     * covers a naturally aligned group of this many consecutive pages.
     * 1 (default) is the conventional one-translation-per-entry array;
     * values > 1 require the In-TLB MSHR to be disabled (the pending-entry
     * reservation protocol is defined on whole entries).
     */
    std::uint32_t l2SubEntries = 1;
    /**
     * Sub-entry sharing: let sub-slots of one tag entry hold translations
     * from different tenants (tag matches on the page-group base only; each
     * sub-slot carries its own ASID).  Tenants whose VPN ranges alias —
     * common, since each space starts near VA 0 — then share tag capacity
     * instead of duplicating it.  Requires l2SubEntries > 1.
     */
    bool l2SubEntrySharing = false;
    /** PW-Warp arbitration across tenants when software walks queue. */
    PwArbitration pwArbitration = PwArbitration::Demand;

    // ---- Sensitivity-study overrides ------------------------------------
    /**
     * When non-zero, replaces the dynamically measured per-level page-table
     * access latency with a fixed value (Fig 23 sweep).
     */
    Cycle fixedPtAccessLatency = 0;

    // ---- Run control ------------------------------------------------------
    std::uint64_t rngSeed = 1;

    /**
     * Cycle interval between conservation-audit sweeps (src/check); 0
     * disables periodic sweeps (the end-of-sim check always runs).  Audit
     * builds (-DSOFTWALKER_AUDIT=ON) default to sweeping; regular builds
     * keep the sweeps off the clock.
     */
    Cycle auditIntervalCycles = kAuditEnabled ? 10000 : 0;

    /** Effective SM<->L2TLB communication latency. */
    Cycle effectiveCommLatency() const
    {
        return commLatency ? commLatency : l2TlbLatency;
    }

    /** Number of page-table radix levels for the configured page size. */
    std::uint32_t pageTableLevels() const;

    /** Abort with fatal() if the configuration is inconsistent. */
    void validate() const;
};

// ---- Tenant topology helpers (shared by GPU, backends, harness) ----------

/** Tenant owning SM @p sm (contiguous slices; asid 0 when single-tenant). */
Asid tenantOfSm(const GpuConfig &cfg, SmId sm);

/** [first SM, SM count) of tenant @p asid's slice. */
std::pair<SmId, std::uint32_t> tenantSmRange(const GpuConfig &cfg,
                                             Asid asid);

/**
 * [first way, way count) of tenant @p asid's L2 TLB slice under MIG
 * partitioning; the full way range when partitioning is off.
 */
std::pair<std::uint32_t, std::uint32_t>
tenantWayRange(const GpuConfig &cfg, Asid asid);

/** Table 3 baseline configuration. */
GpuConfig makeDefaultConfig();

/**
 * Table 3 SoftWalker configuration: software (or hybrid) walks with
 * 32 PW-Warp threads/SM, a 32-entry SoftPWB, and 1024 In-TLB MSHRs.
 */
GpuConfig makeSoftWalkerConfig(
    TranslationMode mode = TranslationMode::SoftWalker,
    std::uint32_t in_tlb_mshrs = 1024);

/**
 * Convenience: scale the hardware walk subsystem together, as the paper does
 * in Figs 5/7/12 ("we also enlarge the L2 TLB MSHR and PWB entries
 * proportionally").
 */
void scalePtwSubsystem(GpuConfig &cfg, std::uint32_t num_ptws,
                       bool scale_mshrs = true, bool scale_pwb = true);

} // namespace sw

#endif // SW_SIM_CONFIG_HH
