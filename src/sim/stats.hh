/**
 * @file
 * Lightweight statistics primitives.
 *
 * Components expose plain stat structs for speed; these helpers cover the
 * common aggregations (latency accumulation, histograms) and the table
 * formatting used by the benchmark harnesses.
 */

#ifndef SW_SIM_STATS_HH
#define SW_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sw {

/** Accumulates count/sum/min/max of a sampled quantity (e.g. a latency). */
struct LatencyStat
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t minv = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t maxv = 0;

    void
    add(std::uint64_t v)
    {
        ++count;
        sum += v;
        minv = std::min(minv, v);
        maxv = std::max(maxv, v);
    }

    double mean() const { return count ? double(sum) / double(count) : 0.0; }

    void
    merge(const LatencyStat &o)
    {
        count += o.count;
        sum += o.sum;
        minv = std::min(minv, o.minv);
        maxv = std::max(maxv, o.maxv);
    }

    void reset() { *this = LatencyStat{}; }
};

/** Fixed-bucket histogram with uniform (linear) bucket widths. */
class Histogram
{
  public:
    /**
     * @param num_buckets number of linear buckets
     * @param bucket_width width of each bucket; samples beyond the last
     *        bucket land in the overflow bucket.
     */
    explicit Histogram(std::size_t num_buckets = 32,
                       std::uint64_t bucket_width = 64)
        : width(bucket_width), buckets(num_buckets + 1, 0)
    {
    }

    void
    add(std::uint64_t v)
    {
        std::size_t idx = static_cast<std::size_t>(v / width);
        if (idx >= buckets.size() - 1)
            idx = buckets.size() - 1;
        ++buckets[idx];
        ++total;
    }

    std::uint64_t bucket(std::size_t i) const { return buckets.at(i); }
    std::size_t numBuckets() const { return buckets.size(); }
    std::uint64_t samples() const { return total; }
    std::uint64_t bucketWidth() const { return width; }

    /** Value below which @p fraction of samples fall (approximate). */
    std::uint64_t
    percentile(double fraction) const
    {
        if (total == 0)
            return 0;
        std::uint64_t target =
            static_cast<std::uint64_t>(fraction * double(total));
        // A zero target (fraction 0, or a fraction smaller than one
        // sample) would stop the scan at the first bucket even when it is
        // empty; the smallest meaningful rank is the first sample.
        if (target == 0)
            target = 1;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            seen += buckets[i];
            if (seen >= target)
                return (i + 1) * width;
        }
        return buckets.size() * width;
    }

    /** Median (upper bucket edge, like percentile()). */
    std::uint64_t p50() const { return percentile(0.50); }
    /** 95th percentile. */
    std::uint64_t p95() const { return percentile(0.95); }
    /** 99th percentile. */
    std::uint64_t p99() const { return percentile(0.99); }

    void reset() { std::fill(buckets.begin(), buckets.end(), 0); total = 0; }

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> buckets;
    std::uint64_t total = 0;
};

/** Geometric mean of a vector of ratios (speedups). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/**
 * Simple fixed-width text-table formatter used by the figure harnesses to
 * print paper-style result rows.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string str() const;

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double v, int precision = 2);

  private:
    std::vector<std::vector<std::string>> rows;
};

} // namespace sw

#endif // SW_SIM_STATS_HH
