#include "sim/stats.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"

namespace sw {

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        SW_ASSERT(v > 0.0, "geomean over non-positive value %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

TextTable::TextTable(std::vector<std::string> header)
{
    rows.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    SW_ASSERT(cells.size() == rows.front().size(),
              "row arity %zu != header arity %zu",
              cells.size(), rows.front().size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> widths(rows.front().size(), 0);
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            out << rows[r][c];
            if (c + 1 < rows[r].size()) {
                out << std::string(widths[c] - rows[r][c].size() + 2, ' ');
            }
        }
        out << '\n';
        if (r == 0) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < widths.size(); ++c)
                total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
            out << std::string(total, '-') << '\n';
        }
    }
    return out.str();
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace sw
