/**
 * @file
 * Global event queue driving the cycle-level simulation.
 *
 * The simulator is event-driven: components schedule callbacks at absolute
 * cycles and the kernel executes them in (cycle, insertion-order) order.
 * There is no per-cycle tick loop; idle periods cost nothing, which is what
 * makes sweeping twenty workloads over dozens of configurations cheap.
 */

#ifndef SW_SIM_EVENT_QUEUE_HH
#define SW_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "check/audit.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace sw {

/** Callback executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * Tick-ordered event queue.  Events scheduled for the same cycle execute in
 * insertion order, which keeps the model deterministic.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated cycle. */
    Cycle now() const { return curCycle; }

    /** Total number of events executed so far. */
    std::uint64_t eventsExecuted() const { return numExecuted; }

    /** Number of pending events. */
    std::size_t pending() const { return heap.size(); }

    bool empty() const { return heap.empty(); }

    /**
     * Schedule @p fn to run at absolute cycle @p when.
     * Scheduling in the past is a simulator bug.
     */
    void
    schedule(Cycle when, EventFn fn)
    {
        SW_ASSERT(when >= curCycle,
                  "event scheduled in the past (%llu < %llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(curCycle));
        heap.push(Event{when, nextSeq++, std::move(fn)});
    }

    /** Schedule @p fn to run @p delay cycles from now. */
    void
    scheduleIn(Cycle delay, EventFn fn)
    {
        schedule(curCycle + delay, std::move(fn));
    }

    /**
     * Execute the earliest pending event, advancing the clock to it.
     * @retval false if the queue was empty.
     */
    bool
    runOne()
    {
        if (heap.empty())
            return false;
        // std::priority_queue::top() is const; the handler is moved out via
        // a const_cast that is safe because the element is popped before the
        // callback runs.
        Event &ev = const_cast<Event &>(heap.top());
        SW_AUDIT(ev.when >= curCycle,
                 "event time moved backwards (%llu < %llu)",
                 static_cast<unsigned long long>(ev.when),
                 static_cast<unsigned long long>(curCycle));
        curCycle = ev.when;
        EventFn fn = std::move(ev.fn);
        heap.pop();
        ++numExecuted;
        fn();
        return true;
    }

    /**
     * Sweep hooks are invoked from run() between two events whenever at
     * least their interval has elapsed since their previous sweep.  Hooks
     * piggyback on real events: they never schedule anything, never
     * advance the clock, and never keep a drained simulation alive, so the
     * simulated timeline is identical with and without them (the
     * Simulation Auditor and the observability sampler both depend on
     * this — they observe, they must not perturb).
     */
    using SweepFn = std::function<void(Cycle)>;

    /**
     * Subscribe an independent sweep hook with its own interval.
     * Several subscribers may coexist (e.g. the Auditor's conservation
     * sweep and the TimeSeriesSampler); each fires on its own cadence.
     * @return a handle for removePeriodicCheck().
     */
    std::uint64_t
    addPeriodicCheck(Cycle interval, SweepFn fn)
    {
        SW_ASSERT(interval > 0 && fn, "sweep hook needs an interval and fn");
        std::uint64_t id = nextSweepId++;
        sweeps.push_back(Sweep{id, interval, curCycle, std::move(fn)});
        return id;
    }

    /** Unsubscribe a hook added with addPeriodicCheck(); unknown ids ok. */
    void
    removePeriodicCheck(std::uint64_t id)
    {
        for (std::size_t i = 0; i < sweeps.size(); ++i) {
            if (sweeps[i].id == id) {
                sweeps.erase(sweeps.begin() +
                             static_cast<std::ptrdiff_t>(i));
                if (legacySweepId == id)
                    legacySweepId = 0;
                return;
            }
        }
    }

    /**
     * Legacy single-slot interface: (re)installs one hook, replacing the
     * previous setPeriodicCheck() subscription.  An @p interval of 0 (or
     * an empty @p fn) uninstalls it.  Hooks added via addPeriodicCheck()
     * are unaffected.
     */
    void
    setPeriodicCheck(Cycle interval, SweepFn fn)
    {
        if (legacySweepId)
            removePeriodicCheck(legacySweepId);
        if (interval && fn)
            legacySweepId = addPeriodicCheck(interval, std::move(fn));
    }

    /**
     * Run events until the queue is empty, @p predicate returns true, or
     * @p cycle_limit is reached.
     * @return the cycle at which execution stopped.
     */
    Cycle
    run(Cycle cycle_limit = kCycleMax,
        const std::function<bool()> &predicate = {})
    {
        while (!heap.empty() && heap.top().when <= cycle_limit) {
            if (predicate && predicate())
                break;
            runOne();
            for (Sweep &sweep : sweeps) {
                if (curCycle - sweep.last >= sweep.interval) {
                    sweep.last = curCycle;
                    sweep.fn(curCycle);
                }
            }
            if ((numExecuted & ((1u << 24) - 1)) == 0) {
                inform("event queue: %llu events, cycle %llu, %zu pending",
                       static_cast<unsigned long long>(numExecuted),
                       static_cast<unsigned long long>(curCycle),
                       heap.size());
            }
        }
        return curCycle;
    }

    /** Drop all pending events and reset the clock (tests only). */
    void
    reset()
    {
        heap = decltype(heap)();
        curCycle = 0;
        nextSeq = 0;
        numExecuted = 0;
    }

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** One periodic sweep subscription (see addPeriodicCheck()). */
    struct Sweep
    {
        std::uint64_t id;
        Cycle interval;
        Cycle last;
        SweepFn fn;
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap;
    Cycle curCycle = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
    std::vector<Sweep> sweeps;
    std::uint64_t nextSweepId = 1;
    std::uint64_t legacySweepId = 0;
};

} // namespace sw

#endif // SW_SIM_EVENT_QUEUE_HH
