/**
 * @file
 * Global event queue driving the cycle-level simulation.
 *
 * The simulator is event-driven: components schedule callbacks at absolute
 * cycles and the kernel executes them in (cycle, insertion-order) order.
 * There is no per-cycle tick loop; idle periods cost nothing, which is what
 * makes sweeping twenty workloads over dozens of configurations cheap.
 *
 * The hot path is allocation-free and sift-cheap, split across two
 * structures:
 *
 *  - a slot-recycling *event slab* holding the handlers themselves —
 *    InlineFunctions whose captures live inside the slab entry (up to
 *    kEventInlineBytes; larger captures recycle through a thread-local
 *    overflow slab).  Slots freed by executed events are reused before the
 *    slab ever grows, so steady state never touches the allocator.
 *
 *  - a binary heap of trivially-copyable 24-byte (cycle, seq, slot)
 *    entries maintained with std::push_heap/std::pop_heap.  Sift
 *    operations move only these PODs, never the closures, so push/pop
 *    cost log(n) memcpys of three words instead of log(n) closure moves
 *    (or, before this design, log(n) std::function moves plus a
 *    malloc/free pair per event).
 *
 * Execution order is a strict total order on (cycle, insertion-seq), so
 * neither the heap layout nor the slab slot assignment can change *which*
 * event runs next — `cycles` and `eventsExecuted` are bit-identical to
 * the std::function/priority_queue implementation this replaced.
 */

#ifndef SW_SIM_EVENT_QUEUE_HH
#define SW_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "check/audit.hh"
#include "prof/hostprof.hh"
#include "sim/inline_function.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace sw {

/**
 * Inline capture budget for event handlers.  Sized for the largest hot
 * capture in the simulator — the SoftWalker interconnect hop, which moves
 * a whole WalkRequest (64 bytes) plus a target SM id — with the hot files
 * static_asserting that their closures fit (see e.g. core/softwalker.cc).
 */
inline constexpr std::size_t kEventInlineBytes = 80;

/** Callback executed when an event fires. */
using EventFn = InlineFunction<void(), kEventInlineBytes>;

/**
 * Tick-ordered event queue.  Events scheduled for the same cycle execute in
 * insertion order, which keeps the model deterministic.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated cycle. */
    Cycle now() const { return curCycle; }

    /** Total number of events executed so far. */
    std::uint64_t eventsExecuted() const { return numExecuted; }

    /** Number of pending events. */
    std::size_t pending() const { return heap.size(); }

    bool empty() const { return heap.empty(); }

    /**
     * Schedule @p fn to run at absolute cycle @p when.
     * Scheduling in the past is a simulator bug.
     */
    void
    schedule(Cycle when, EventFn fn)
    {
        SW_ASSERT(when >= curCycle,
                  "event scheduled in the past (%llu < %llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(curCycle));
        std::uint32_t slot;
        if (freeSlots.empty()) {
            slot = static_cast<std::uint32_t>(slab.size());
            slab.emplace_back();
        } else {
            slot = freeSlots.back();
            freeSlots.pop_back();
        }
        slab[slot] = std::move(fn);
        heap.push_back(HeapEntry{when, nextSeq++, slot});
        std::push_heap(heap.begin(), heap.end(), Later{});
    }

    /** Schedule @p fn to run @p delay cycles from now. */
    void
    scheduleIn(Cycle delay, EventFn fn)
    {
        schedule(curCycle + delay, std::move(fn));
    }

    /**
     * Execute the earliest pending event, advancing the clock to it.
     * @retval false if the queue was empty.
     */
    bool
    runOne()
    {
        if (heap.empty())
            return false;
        std::pop_heap(heap.begin(), heap.end(), Later{});
        HeapEntry top = heap.back();
        heap.pop_back();
        SW_AUDIT(top.when >= curCycle,
                 "event time moved backwards (%llu < %llu)",
                 static_cast<unsigned long long>(top.when),
                 static_cast<unsigned long long>(curCycle));
        curCycle = top.when;
        ++numExecuted;
        // Move the handler out and recycle its slot *before* invoking:
        // the callback is free to schedule (and the slab free to hand the
        // slot straight back to it).
        EventFn fn = std::move(slab[top.slot]);
        freeSlots.push_back(top.slot);
        {
            // Host-time attribution only; compiled out by default and a
            // single relaxed load when compiled in but disabled.
            SW_PROF_SCOPE(::sw::prof::Zone::EventDispatch);
            fn();
        }
        return true;
    }

    /**
     * Sweep hooks are invoked from run() between two events whenever at
     * least their interval has elapsed since their previous sweep.  Hooks
     * piggyback on real events: they never schedule anything, never
     * advance the clock, and never keep a drained simulation alive, so the
     * simulated timeline is identical with and without them (the
     * Simulation Auditor and the observability sampler both depend on
     * this — they observe, they must not perturb).
     */
    using SweepFn = std::function<void(Cycle)>;

    /**
     * Subscribe an independent sweep hook with its own interval.
     * Several subscribers may coexist (e.g. the Auditor's conservation
     * sweep and the TimeSeriesSampler); each fires on its own cadence.
     * @return a handle for removePeriodicCheck().
     */
    std::uint64_t
    addPeriodicCheck(Cycle interval, SweepFn fn)
    {
        SW_ASSERT(interval > 0 && fn, "sweep hook needs an interval and fn");
        std::uint64_t id = nextSweepId++;
        sweeps.push_back(Sweep{id, interval, curCycle, std::move(fn)});
        return id;
    }

    /** Unsubscribe a hook added with addPeriodicCheck(); unknown ids ok. */
    void
    removePeriodicCheck(std::uint64_t id)
    {
        for (std::size_t i = 0; i < sweeps.size(); ++i) {
            if (sweeps[i].id == id) {
                sweeps.erase(sweeps.begin() +
                             static_cast<std::ptrdiff_t>(i));
                if (legacySweepId == id)
                    legacySweepId = 0;
                return;
            }
        }
    }

    /**
     * Legacy single-slot interface: (re)installs one hook, replacing the
     * previous setPeriodicCheck() subscription.  An @p interval of 0 (or
     * an empty @p fn) uninstalls it.  Hooks added via addPeriodicCheck()
     * are unaffected.
     */
    void
    setPeriodicCheck(Cycle interval, SweepFn fn)
    {
        if (legacySweepId)
            removePeriodicCheck(legacySweepId);
        if (interval && fn)
            legacySweepId = addPeriodicCheck(interval, std::move(fn));
    }

    /** Number of live periodic-check subscriptions. */
    std::size_t numPeriodicChecks() const { return sweeps.size(); }

    /** Insertion-sequence counter (checkpointing; pairs with now()). */
    std::uint64_t seqCounter() const { return nextSeq; }

    /**
     * Restore the clock of a drained queue to a checkpointed position.
     * Only the scalar counters move: pending events cannot be serialised
     * (they are closures), which is why checkpoints are taken at a
     * quiesced tick in the first place.  The sequence counter must be
     * restored too — it breaks same-cycle scheduling ties, so resuming
     * with a different value would reorder the resumed timeline.
     */
    void
    restoreClock(Cycle cycle, std::uint64_t seq, std::uint64_t executed)
    {
        SW_ASSERT(heap.empty(),
                  "clock restore with %zu event(s) pending", heap.size());
        SW_ASSERT(cycle >= curCycle && seq >= nextSeq,
                  "clock restore would rewind time");
        curCycle = cycle;
        nextSeq = seq;
        numExecuted = executed;
    }

    /**
     * Run events until the queue is empty, @p predicate returns true, or
     * @p cycle_limit is reached.
     * @return the cycle at which execution stopped.
     */
    Cycle
    run(Cycle cycle_limit = kCycleMax,
        const std::function<bool()> &predicate = {})
    {
        SW_PROF_SCOPE(::sw::prof::Zone::SimLoop);
        while (!heap.empty() && heap.front().when <= cycle_limit) {
            if (predicate && predicate())
                break;
            runOne();
            for (Sweep &sweep : sweeps) {
                if (curCycle - sweep.last >= sweep.interval) {
                    sweep.last = curCycle;
                    sweep.fn(curCycle);
                }
            }
            // Host gauges every 2^16 events: the cadence is driven by the
            // (deterministic) event count, so the sampled sim cycles are
            // identical across runs even though the values are host-side.
            if ((numExecuted & ((1u << 16) - 1)) == 0) {
                SW_PROF_GAUGES(curCycle, heap.size(),
                               slab.size() - freeSlots.size(), slab.size());
            }
            if ((numExecuted & ((1u << 24) - 1)) == 0) {
                inform("event queue: %llu events, cycle %llu, %zu pending",
                       static_cast<unsigned long long>(numExecuted),
                       static_cast<unsigned long long>(curCycle),
                       heap.size());
            }
        }
        return curCycle;
    }

    /**
     * Drop all pending events, periodic-check subscriptions, and counters;
     * reset the clock (tests only).  Sweep subscriptions must not survive:
     * their captures point into components whose lifetime ended with the
     * run being reset.
     */
    void
    reset()
    {
        heap.clear();
        slab.clear();
        freeSlots.clear();
        curCycle = 0;
        nextSeq = 0;
        numExecuted = 0;
        sweeps.clear();
        nextSweepId = 1;
        legacySweepId = 0;
    }

  private:
    friend struct AuditTester;   ///< negative-path audit tests only

    /** Heap element: ordering key + slab slot; trivially copyable. */
    struct HeapEntry
    {
        Cycle when;
        std::uint64_t seq;
        std::uint32_t slot;
    };
    static_assert(std::is_trivially_copyable_v<HeapEntry>,
                  "heap sifts must be memcpys");

    struct Later
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** One periodic sweep subscription (see addPeriodicCheck()). */
    struct Sweep
    {
        std::uint64_t id;
        Cycle interval;
        Cycle last;
        SweepFn fn;
    };

    /** Binary min-heap on (when, seq); heap.front() is the next event. */
    std::vector<HeapEntry> heap;
    /** Handler storage; slots are recycled through freeSlots. */
    std::vector<EventFn> slab;
    std::vector<std::uint32_t> freeSlots;
    Cycle curCycle = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
    std::vector<Sweep> sweeps;
    std::uint64_t nextSweepId = 1;
    std::uint64_t legacySweepId = 0;
};

} // namespace sw

#endif // SW_SIM_EVENT_QUEUE_HH
