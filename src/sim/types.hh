/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 */

#ifndef SW_SIM_TYPES_HH
#define SW_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace sw {

/** Simulated clock cycle. The whole GPU runs in a single clock domain. */
using Cycle = std::uint64_t;

/** Sentinel for "never" / "unscheduled". */
inline constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();

/** Simulated virtual address (49-bit space per GP100 MMU format). */
using VirtAddr = std::uint64_t;

/** Simulated physical address (47-bit space). */
using PhysAddr = std::uint64_t;

/** Virtual page number. */
using Vpn = std::uint64_t;

/** Physical frame number. */
using Pfn = std::uint64_t;

/**
 * Address-space identifier.  Each tenant (client process / MIG instance)
 * owns one address space; ASID 0 is the sole space of a single-tenant
 * machine and every single-tenant code path is keyed by it implicitly.
 */
using Asid = std::uint32_t;

/** Identifier of a Streaming Multiprocessor. */
using SmId = std::uint32_t;

/** Identifier of a warp within an SM. */
using WarpId = std::uint32_t;

inline constexpr SmId kInvalidSm = std::numeric_limits<SmId>::max();

} // namespace sw

#endif // SW_SIM_TYPES_HH
