/**
 * @file
 * Simulation Auditor: the correctness harness for the whole translation
 * path.
 *
 * Two layers:
 *
 *  1. A zero-cost-when-disabled macro layer.  SW_AUDIT() is a hot-path
 *     invariant check that compiles to nothing unless the build enables
 *     -DSOFTWALKER_AUDIT (the `audit` CMake preset).  SW_ASSERT (see
 *     sim/logging.hh) stays active in every build; use SW_AUDIT for checks
 *     that are too hot or too paranoid for release runs.
 *
 *  2. A registry of *conservation audits*: named cross-component
 *     bookkeeping checks (MSHR slots allocated == released, walks in
 *     flight match `sum(queues) + sum(walkers)`, event time is monotonic,
 *     stats cross-foot, ...) that run at a configurable cycle interval and
 *     once at end-of-sim.  Components register audits against the Auditor
 *     owned by the Gpu; violations route through the logging failure sink
 *     (panic), or are recorded for inspection when tests flip the policy.
 *
 * The registry itself is always compiled — audits run off the hot path and
 * only when scheduled — so negative tests can exercise every invariant in
 * any build flavour.
 */

#ifndef SW_CHECK_AUDIT_HH
#define SW_CHECK_AUDIT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

#ifndef SOFTWALKER_AUDIT
#define SOFTWALKER_AUDIT 0
#endif

#if SOFTWALKER_AUDIT
/**
 * Hot-path invariant check, active only in audit builds.  In regular
 * builds the condition is not evaluated (it sits in an unevaluated sizeof
 * so operands are still name-checked and never warn as unused).
 */
#define SW_AUDIT(cond, fmt, ...)                                            \
    SW_ASSERT(cond, fmt __VA_OPT__(,) __VA_ARGS__)
#else
#define SW_AUDIT(cond, fmt, ...)                                            \
    do {                                                                    \
        (void)sizeof(!(cond));                                              \
    } while (0)
#endif

namespace sw {

class EventQueue;
class StatGroup;

/** True when the build was configured with -DSOFTWALKER_AUDIT=ON. */
inline constexpr bool kAuditEnabled = SOFTWALKER_AUDIT != 0;

/** When a registered audit may legally run. */
enum class AuditScope
{
    /** Holds between any two events; checked periodically and at the end. */
    Continuous,
    /**
     * Holds only once the machine has drained (no pending events): e.g.
     * "no leaked In-TLB MSHR".  Checked at end-of-sim when quiescent.
     */
    Quiescent,
};

/** One recorded invariant violation. */
struct AuditViolation
{
    std::string audit;   ///< name of the audit that fired
    std::string detail;  ///< what exactly failed
    Cycle cycle = 0;     ///< simulated cycle of the check
};

/**
 * Handed to each audit function; the audit reports problems via fail().
 * An audit that returns without calling fail() passed.
 */
class AuditContext
{
  public:
    /** Report one violation; an audit may report several. */
    void fail(std::string detail) { failures.push_back(std::move(detail)); }

    bool failed() const { return !failures.empty(); }

  private:
    friend class Auditor;
    std::vector<std::string> failures;
};

/** A registered conservation check. */
using AuditFn = std::function<void(AuditContext &)>;

/** Registry + scheduler for conservation audits. */
class Auditor
{
  public:
    /** What to do when an audit reports a violation. */
    enum class FailurePolicy
    {
        Panic,   ///< route through the logging failure sink (default)
        Record,  ///< accumulate into violations() — used by tests
    };

    struct Stats
    {
        std::uint64_t sweeps = 0;      ///< checkNow() invocations
        std::uint64_t auditsRun = 0;   ///< individual audit executions
        std::uint64_t violations = 0;  ///< total failures reported
    };

    Auditor() = default;

    Auditor(const Auditor &) = delete;
    Auditor &operator=(const Auditor &) = delete;

    /** Register a named audit; names must be unique. */
    void registerAudit(std::string name, AuditScope scope, AuditFn fn);

    bool hasAudit(const std::string &name) const;
    std::size_t numAudits() const { return audits.size(); }
    std::vector<std::string> auditNames() const;

    void setPolicy(FailurePolicy policy) { policy_ = policy; }
    FailurePolicy policy() const { return policy_; }

    /**
     * Run every Continuous audit (and, when @p quiescent, the Quiescent
     * ones too) at @p now.  Under FailurePolicy::Panic any violation
     * terminates via the logging failure sink; under Record they are
     * appended to violations().
     */
    void checkNow(Cycle now, bool quiescent = false);

    /**
     * Arm periodic checking via the queue's sweep hook: Continuous audits
     * run between two real events whenever @p interval cycles have elapsed
     * since the previous sweep.  The hook observes without perturbing —
     * it schedules nothing, so the simulated timeline (final cycle, event
     * count) is identical with auditing on and off.
     */
    void schedulePeriodic(EventQueue &eq, Cycle interval);

    /**
     * End-of-sim check: Continuous audits always, Quiescent audits only if
     * @p quiescent (the run drained rather than hitting its cycle cap).
     */
    void finalCheck(Cycle now, bool quiescent);

    /** Violations recorded under FailurePolicy::Record. */
    const std::vector<AuditViolation> &violations() const
    {
        return violations_;
    }
    void clearViolations() { violations_.clear(); }

    /** True if a recorded violation came from the named audit. */
    bool fired(const std::string &name) const;

    const Stats &stats() const { return stats_; }

    /** Register the auditor's own counters with the stat registry. */
    void registerStats(StatGroup group);

  private:
    struct Registered
    {
        std::string name;
        AuditScope scope;
        AuditFn fn;
    };

    void runOne(const Registered &audit, Cycle now);

    std::vector<Registered> audits;
    FailurePolicy policy_ = FailurePolicy::Panic;
    std::vector<AuditViolation> violations_;
    Stats stats_;
};

} // namespace sw

#endif // SW_CHECK_AUDIT_HH
