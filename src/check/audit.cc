#include "check/audit.hh"

#include <algorithm>

#include "obs/stat_registry.hh"
#include "prof/hostprof.hh"
#include "sim/event_queue.hh"

namespace sw {

void
Auditor::registerAudit(std::string name, AuditScope scope, AuditFn fn)
{
    SW_ASSERT(fn != nullptr, "audit '%s' registered without a function",
              name.c_str());
    SW_ASSERT(!hasAudit(name), "duplicate audit registration '%s'",
              name.c_str());
    audits.push_back({std::move(name), scope, std::move(fn)});
}

bool
Auditor::hasAudit(const std::string &name) const
{
    return std::any_of(audits.begin(), audits.end(),
                       [&](const Registered &a) { return a.name == name; });
}

std::vector<std::string>
Auditor::auditNames() const
{
    std::vector<std::string> names;
    names.reserve(audits.size());
    for (const auto &audit : audits)
        names.push_back(audit.name);
    return names;
}

void
Auditor::runOne(const Registered &audit, Cycle now)
{
    AuditContext ctx;
    audit.fn(ctx);
    ++stats_.auditsRun;
    if (!ctx.failed())
        return;

    stats_.violations += ctx.failures.size();
    if (policy_ == FailurePolicy::Panic) {
        // All terminating paths share the logging failure sink; give the
        // first detail line — it is the one that names the broken
        // bookkeeping.
        panic("audit '%s' failed at cycle %llu: %s%s",
              audit.name.c_str(), static_cast<unsigned long long>(now),
              ctx.failures.front().c_str(),
              ctx.failures.size() > 1 ? " (+ further violations)" : "");
    }
    for (auto &detail : ctx.failures)
        violations_.push_back({audit.name, std::move(detail), now});
}

void
Auditor::checkNow(Cycle now, bool quiescent)
{
    SW_PROF_SCOPE(prof::Zone::StatsAudit);
    ++stats_.sweeps;
    for (const auto &audit : audits) {
        if (audit.scope == AuditScope::Quiescent && !quiescent)
            continue;
        runOne(audit, now);
    }
}

void
Auditor::schedulePeriodic(EventQueue &eq, Cycle interval)
{
    SW_ASSERT(interval > 0, "audit interval must be positive");
    // Piggyback on the queue's sweep hook rather than scheduling events of
    // our own: sweeping must not advance the clock, extend the run past its
    // natural drain point, or change eventsExecuted() — the simulated
    // timeline has to be bit-identical with auditing on and off.
    eq.setPeriodicCheck(interval,
                        [this](Cycle now) { checkNow(now); });
}

void
Auditor::finalCheck(Cycle now, bool quiescent)
{
    checkNow(now, quiescent);
}

bool
Auditor::fired(const std::string &name) const
{
    return std::any_of(violations_.begin(), violations_.end(),
                       [&](const AuditViolation &v) {
                           return v.audit == name;
                       });
}

void
Auditor::registerStats(StatGroup group)
{
    group.counter("sweeps", &stats_.sweeps);
    group.counter("audits_run", &stats_.auditsRun);
    group.counter("violations", &stats_.violations);
}

} // namespace sw
