/**
 * @file
 * Experiment harness: builds a GPU from a configuration and a Table 4
 * benchmark, runs it to an instruction quota, and extracts the metric set
 * every figure in the paper draws from.
 */

#ifndef SW_HARNESS_EXPERIMENT_HH
#define SW_HARNESS_EXPERIMENT_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gpu/gpu.hh"
#include "obs/observability.hh"
#include "sim/config.hh"
#include "trace/trace_workload.hh"
#include "workload/benchmarks.hh"

namespace sw {

/** Everything the figure harnesses read out of one simulation run. */
struct RunResult
{
    std::string benchmark;
    TranslationMode mode = TranslationMode::HardwarePtw;

    // Progress / performance
    Cycle cycles = 0;
    std::uint64_t warpInstrs = 0;
    double perf = 0.0;              ///< warp instructions per cycle

    // Translation path
    std::uint64_t l1TlbHits = 0;
    std::uint64_t l1TlbMisses = 0;
    std::uint64_t l2TlbAccesses = 0;
    std::uint64_t l2TlbHits = 0;
    std::uint64_t l2TlbMisses = 0;
    std::uint64_t l2MshrFailures = 0;
    std::uint64_t inTlbMshrAllocs = 0;
    std::uint64_t inTlbMshrPeak = 0;
    std::uint64_t walks = 0;
    double avgWalkQueueDelay = 0.0;
    double avgWalkAccessLatency = 0.0;
    double avgWalkTotalLatency = 0.0;
    double avgTranslationLatency = 0.0;
    double l2TlbMpki = 0.0;         ///< per thread-kilo-instruction
    double l2TlbHitRate = 0.0;
    std::uint64_t faults = 0;

    // Data memory
    double l2dMissRate = 0.0;
    std::uint64_t l2dAccesses = 0;
    std::uint64_t l2dMshrFailures = 0;
    double dramUtilisation = 0.0;

    // SM scheduler accounting
    std::uint64_t memStallCycles = 0;   ///< summed over SMs
    std::uint64_t issueSlotCycles = 0;
    std::uint64_t computeCycles = 0;
    std::uint64_t pwIssueCycles = 0;
    double avgAccessLatency = 0.0;      ///< per data access (Fig 4)

    // SoftWalker internals (zero in hardware modes)
    std::uint64_t swToHardware = 0;
    std::uint64_t swToSoftware = 0;
    std::uint64_t swBatches = 0;
    double swAvgBatchSize = 0.0;
    std::uint64_t swInstructions = 0;

    /** Stall cycles normalised by total SM-cycles. */
    double
    stallFraction(std::uint32_t num_sms) const
    {
        return cycles ? double(memStallCycles) /
                        (double(cycles) * double(num_sms))
                      : 0.0;
    }
};

/** Stopping conditions with environment overrides (SW_QUOTA, SW_MAXCYCLES). */
Gpu::RunLimits defaultLimits();

/**
 * Per-benchmark limits: regular workloads run fast but suffer a long
 * kernel-start TLB-fill storm, so they get a larger warmup and quota;
 * irregular workloads reach their (contended) steady state quickly.
 */
Gpu::RunLimits limitsFor(const BenchmarkInfo &info);

/** Run a prepared GPU and extract the result. */
RunResult collectResult(Gpu &gpu, const std::string &name);

/**
 * Everything one simulation run needs, in one struct: configuration,
 * workload source, stopping conditions, observability, and optional trace
 * recording.  This is the single harness entry point (the deprecated
 * runBenchmark()/runWorkload() shims were removed after one release).
 *
 * Workload source: set exactly one of
 *   - `benchmark` (+ `footprintScale`): a Table 4 registry entry;
 *   - `workloadName`: any factory-registry name, including scheme names
 *     like "trace:run.swtrace";
 *   - `workload`: a ready-made instance (RunSpec becomes move-only);
 *   - `replayPath` (+ `replayEnd`): replay a recorded `.swtrace`.  The
 *     file's config digest is verified against `cfg` before the run.
 *
 * Limits resolve in priority order: explicit `limits`; the benchmark's
 * limitsFor(); a replayed trace's recorded limits; defaultLimits().
 */
struct RunSpec
{
    GpuConfig cfg;

    // ---- Workload source (exactly one) -------------------------------
    const BenchmarkInfo *benchmark = nullptr;
    std::string workloadName;
    std::unique_ptr<Workload> workload;
    std::string replayPath;

    /** Footprint multiplier for benchmark / workloadName sources. */
    double footprintScale = 1.0;
    /** End-of-trace behaviour for replayPath sources. */
    TraceEndPolicy replayEnd = TraceEndPolicy::Drain;

    // ---- Stopping conditions -----------------------------------------
    std::optional<Gpu::RunLimits> limits;

    // ---- Observability (non-owning; single-run instruments) ----------
    const Observability *obs = nullptr;

    // ---- Trace recording ---------------------------------------------
    /** When non-empty, record this run's stream to a `.swtrace` here. */
    std::string recordPath;

    // ---- Checkpoint / fast-forward (docs/CHECKPOINTS.md) -------------
    /**
     * Functionally warm this many warp instructions (page table, TLBs,
     * PWC, workload cursors — no timing) before the detailed run starts.
     * Statistics are zeroed afterwards.  Incompatible with recording and
     * with checkpointIn (the checkpoint already contains its warmup).
     */
    std::uint64_t ffwdInstrs = 0;
    /**
     * Split the detailed run at this fetch count: run to the barrier,
     * save a checkpoint to checkpointOut, then continue to the end.  The
     * result covers the whole quota, so its fingerprint must equal the
     * fingerprint of a checkpointIn run restored from the saved file —
     * the determinism contract the CI gate compares.  Must not exceed
     * quota + warmup.
     */
    std::uint64_t checkpointAtInstrs = 0;
    std::string checkpointOut;   ///< path for the checkpointAtInstrs save
    /**
     * Resume from this checkpoint instead of starting cold: the spec
     * must rebuild the same machine (config digest is hard-checked) and
     * the same workload source; the run covers the remaining quota.
     */
    std::string checkpointIn;
};

/**
 * Run one simulation described by @p spec and extract its result.  When
 * an observability bundle is attached it is installed after the walk
 * backend (so backend stats register too) and the registry is capture()d
 * before the GPU is torn down.
 */
RunResult run(RunSpec spec);

/** Speedup of @p opt over @p base (performance ratio). */
double speedup(const RunResult &base, const RunResult &opt);

/** Convenience: geomean-ready vector of speedups vs. per-bench baselines. */
std::vector<double> speedups(const std::vector<RunResult> &base,
                             const std::vector<RunResult> &opt);

} // namespace sw

#endif // SW_HARNESS_EXPERIMENT_HH
