/**
 * @file
 * Phase-sampled simulation: run only a trace's representative windows in
 * detail, fast-forward functionally across the gaps, and reconstruct
 * whole-run metrics as cluster-weighted estimates with error bars.
 *
 * The estimator and its assumptions (stream-order alignment between the
 * plan and execution, weighted-mean reconstruction, weighted-spread error
 * bars) are specified in docs/CHECKPOINTS.md §Phase sampling; the
 * fidelity gate lives in bench/sampling_validation.cc.
 */

#ifndef SW_HARNESS_SAMPLED_HH
#define SW_HARNESS_SAMPLED_HH

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "ckpt/sampling.hh"
#include "harness/experiment.hh"

namespace sw {

/** One phase-sampled run: plan, per-window results, reconstruction. */
struct SampledRunResult
{
    SamplingPlan plan;
    /** Detailed result of each representative window (plan order). */
    std::vector<RunResult> windows;
    /**
     * Every numeric RunResult field, reconstructed across windows: mean
     * is the cluster-weighted per-window value, spread the weighted
     * standard deviation (the error bar).  Counter fields are per-window
     * values — multiply by plan.totalWindows to extrapolate totals.
     */
    std::map<std::string, MetricEstimate> metrics;
    /**
     * Headline reconstruction: rates and latencies are weighted means;
     * counters and cycles are extrapolated to whole-run totals.
     */
    RunResult combined;

    /**
     * Detailed instructions actually simulated: measured windows plus the
     * per-window timed warmups (SamplingOptions::windowWarmupInstrs).
     */
    std::uint64_t detailedInstrsRun = 0;

    /** Detailed / total instruction ratio (the speedup the issue gates). */
    double
    detailRatio() const
    {
        std::uint64_t detailed =
            detailedInstrsRun ? detailedInstrsRun : plan.detailedInstrs();
        return plan.totalInstrs
            ? double(detailed) / double(plan.totalInstrs)
            : 0.0;
    }
};

/**
 * Run @p spec phase-sampled.  The spec must use a replayPath workload
 * source (sampling needs the recorded stream to plan over); recording,
 * checkpointing, and ffwdInstrs must be unset — the sampler drives its
 * own fast-forward.  @p opts.pageBytes is overridden with the config's
 * page size so features match the simulated geometry.
 *
 * @p sharedPlan, when non-null, replaces the plan built from this run's
 * own trace — *paired sampling*.  Metrics that compare two
 * configurations of the same workload (speedups, stall reductions)
 * difference two independent estimates; sampling both runs at the same
 * windows with the same weights makes the per-mode estimation errors
 * common-mode, so they cancel in the comparison instead of adding.
 * Build the plan from one mode's trace and pass it to every mode's
 * sampled run.  fatal() if the plan overruns this trace.
 */
SampledRunResult runSampled(RunSpec spec, SamplingOptions opts,
                            const SamplingPlan *sharedPlan = nullptr);

/** JSON artifact ("softwalker.sampled/1"): plan, windows, estimates. */
void writeSampledJson(std::ostream &out, const SampledRunResult &result);

} // namespace sw

#endif // SW_HARNESS_SAMPLED_HH
