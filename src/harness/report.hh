/**
 * @file
 * Machine-readable result output: serialise RunResults to JSON or CSV so
 * plotting pipelines can consume sweeps without scraping the text tables.
 */

#ifndef SW_HARNESS_REPORT_HH
#define SW_HARNESS_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace sw {

/** Serialise one result as a single JSON object (no trailing newline). */
std::string toJson(const RunResult &result);

/** Serialise many results as a JSON array. */
std::string toJson(const std::vector<RunResult> &results);

/** CSV header matching writeCsvRow's columns. */
std::string csvHeader();

/** One CSV row (no trailing newline). */
std::string toCsvRow(const RunResult &result);

/** Write header + rows to a stream. */
void writeCsv(std::ostream &out, const std::vector<RunResult> &results);

} // namespace sw

#endif // SW_HARNESS_REPORT_HH
