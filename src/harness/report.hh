/**
 * @file
 * Machine-readable result output: serialise RunResults to JSON or CSV so
 * plotting pipelines can consume sweeps without scraping the text tables.
 *
 * Every serialiser is a RunResultFieldVisitor over the single field
 * enumeration in visitFields(); adding a RunResult field means adding one
 * line there and every format picks it up, with header/row arity agreement
 * by construction.
 */

#ifndef SW_HARNESS_REPORT_HH
#define SW_HARNESS_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace sw {

/** Receives each RunResult field in a fixed order (see visitFields()). */
class RunResultFieldVisitor
{
  public:
    virtual ~RunResultFieldVisitor() = default;

    virtual void str(const char *name, const std::string &value) = 0;
    virtual void u64(const char *name, std::uint64_t value) = 0;
    virtual void f64(const char *name, double value) = 0;
};

/**
 * Enumerate every field of @p result into @p visitor.  The order is fixed
 * and shared by all serialisers: identity first (benchmark, mode), then
 * progress, translation path, data memory, SM accounting, SoftWalker
 * internals.
 */
void visitFields(const RunResult &result, RunResultFieldVisitor &visitor);

/** Serialise one result as a single JSON object (no trailing newline). */
std::string toJson(const RunResult &result);

/** Serialise many results as a JSON array. */
std::string toJson(const std::vector<RunResult> &results);

/** CSV header matching toCsvRow's columns. */
std::string csvHeader();

/** One CSV row (no trailing newline). */
std::string toCsvRow(const RunResult &result);

/** Write header + rows to a stream. */
void writeCsv(std::ostream &out, const std::vector<RunResult> &results);

/**
 * Exact textual fingerprint of a result: every visitFields() field as
 * `name=value` lines, doubles rendered with %a so any bit difference
 * shows.  Two runs are field-identical iff their fingerprints compare
 * equal — the determinism contract the sweep and trace-replay tests (and
 * the CI record/replay gate) hold down.
 */
std::string fingerprint(const RunResult &result);

} // namespace sw

#endif // SW_HARNESS_REPORT_HH
