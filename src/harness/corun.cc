#include "harness/corun.hh"

#include <utility>

#include "core/softwalker.hh"
#include "harness/experiment.hh"
#include "prof/hostprof.hh"
#include "sim/logging.hh"
#include "workload/benchmarks.hh"

namespace sw {

namespace {

/** What the per-tenant metrics are read from after one machine ran. */
struct SliceMetrics
{
    std::uint64_t warpInstrs = 0;
    double perf = 0.0;
    double walkQueueDelay = 0.0;
    std::uint64_t walks = 0;
    std::uint64_t l2Misses = 0;
};

/**
 * Metrics of @p asid's SM slice of a finished @p gpu.  Used identically
 * for the co-run (a real tenant slice) and the solo baseline (ASID 0 of
 * a machine that *is* the slice), so the comparison is like-for-like.
 */
SliceMetrics
sliceMetrics(const Gpu &gpu, Asid asid)
{
    SliceMetrics out;
    auto [first_sm, sm_count] = tenantSmRange(gpu.config(), asid);
    for (std::uint32_t i = 0; i < sm_count; ++i)
        out.warpInstrs += gpu.sm(first_sm + i).stats().warpInstrs;
    Cycle cycles = gpu.measuredCycles();
    out.perf = cycles ? double(out.warpInstrs) / double(cycles) : 0.0;
    const TranslationEngine::TenantStats &ts =
        gpu.engine().tenantStats(asid);
    out.walkQueueDelay = ts.walkQueueDelay.mean();
    out.walks = ts.walksCompleted;
    out.l2Misses = ts.l2Misses;
    return out;
}

/** Build, run, and return the machine for @p cfg over @p workloads. */
std::unique_ptr<Gpu>
runMachine(const GpuConfig &cfg,
           std::vector<std::unique_ptr<Workload>> workloads,
           const Gpu::RunLimits &limits)
{
    std::unique_ptr<Gpu> gpu;
    {
        SW_PROF_SCOPE(prof::Zone::Setup);
        gpu = std::make_unique<Gpu>(cfg, std::move(workloads));
        installWalkBackend(*gpu);
    }
    gpu->run(limits);
    return gpu;
}

} // namespace

GpuConfig
soloConfigFor(const GpuConfig &cfg, Asid asid)
{
    GpuConfig solo = cfg;
    auto [first_sm, sm_count] = tenantSmRange(cfg, asid);
    (void)first_sm;
    solo.numSms = sm_count;
    if (cfg.migPartitioning) {
        // The co-run guarantees the tenant only its own L2 TLB ways;
        // pricing interference against a full shared TLB would charge
        // capacity loss to contention.
        auto [first_way, way_count] = tenantWayRange(cfg, asid);
        (void)first_way;
        solo.l2TlbEntries = cfg.l2TlbEntries / cfg.l2TlbWays * way_count;
        solo.l2TlbWays = way_count;
        // In-TLB MSHRs live in the L2 TLB's ways: the capacity the tenant
        // can pend follows its way share too.
        if (solo.inTlbMshrMax > solo.l2TlbEntries)
            solo.inTlbMshrMax = solo.l2TlbEntries;
    }
    solo.numTenants = 1;
    solo.migPartitioning = false;
    return solo;
}

CoRunResult
runCoRun(const CoRunSpec &spec)
{
    if (spec.tenants.empty())
        fatal("co-run spec has no tenants");
    GpuConfig cfg = spec.cfg;
    cfg.numTenants = std::uint32_t(spec.tenants.size());
    Gpu::RunLimits limits = spec.limits.value_or(defaultLimits());

    std::vector<std::unique_ptr<Workload>> workloads;
    workloads.reserve(spec.tenants.size());
    for (const CoRunTenant &tenant : spec.tenants)
        workloads.push_back(
            makeWorkload(tenant.workload, tenant.footprintScale));

    std::unique_ptr<Gpu> corun =
        runMachine(cfg, std::move(workloads), limits);

    CoRunResult result;
    result.cycles = corun->measuredCycles();
    result.tenants.reserve(spec.tenants.size());
    for (Asid asid = 0; asid < spec.tenants.size(); ++asid) {
        SliceMetrics m = sliceMetrics(*corun, asid);
        TenantOutcome outcome;
        outcome.workload = spec.tenants[asid].workload;
        outcome.asid = asid;
        outcome.warpInstrs = m.warpInstrs;
        outcome.perf = m.perf;
        outcome.walkQueueDelay = m.walkQueueDelay;
        outcome.walks = m.walks;
        outcome.l2Misses = m.l2Misses;
        result.tenants.push_back(std::move(outcome));
    }
    corun.reset();   // free the co-run machine before the solo runs

    if (!spec.soloBaselines)
        return result;

    double min_ws = 0.0, max_ws = 0.0;
    for (TenantOutcome &outcome : result.tenants) {
        std::vector<std::unique_ptr<Workload>> solo_workloads;
        solo_workloads.push_back(
            makeWorkload(outcome.workload,
                         spec.tenants[outcome.asid].footprintScale));
        std::unique_ptr<Gpu> solo =
            runMachine(soloConfigFor(cfg, outcome.asid),
                       std::move(solo_workloads), limits);
        SliceMetrics m = sliceMetrics(*solo, 0);
        outcome.soloPerf = m.perf;
        outcome.soloWalkQueueDelay = m.walkQueueDelay;
        SW_ASSERT(outcome.soloPerf > 0.0,
                  "tenant %u ('%s') made no solo progress", outcome.asid,
                  outcome.workload.c_str());
        outcome.weightedSpeedup = outcome.perf / outcome.soloPerf;
        outcome.slowdown = outcome.perf > 0.0
                               ? outcome.soloPerf / outcome.perf : 0.0;
        result.systemThroughput += outcome.weightedSpeedup;
        result.avgSlowdown += outcome.slowdown;
        if (outcome.asid == 0 || outcome.weightedSpeedup < min_ws)
            min_ws = outcome.weightedSpeedup;
        if (outcome.asid == 0 || outcome.weightedSpeedup > max_ws)
            max_ws = outcome.weightedSpeedup;
    }
    result.avgSlowdown /= double(result.tenants.size());
    result.fairness = max_ws > 0.0 ? min_ws / max_ws : 0.0;
    return result;
}

std::string
corunFingerprint(const CoRunResult &result)
{
    std::string text;
    auto u64 = [&text](const std::string &name, std::uint64_t value) {
        text += strprintf("%s=%llu\n", name.c_str(),
                          (unsigned long long)value);
    };
    auto f64 = [&text](const std::string &name, double value) {
        // %a is exact: any bit difference in a double shows up.
        text += strprintf("%s=%a\n", name.c_str(), value);
    };
    u64("cycles", result.cycles);
    f64("systemThroughput", result.systemThroughput);
    f64("avgSlowdown", result.avgSlowdown);
    f64("fairness", result.fairness);
    for (const TenantOutcome &outcome : result.tenants) {
        std::string p = strprintf("tenant%u.", outcome.asid);
        text += p + "workload=" + outcome.workload + "\n";
        u64(p + "warpInstrs", outcome.warpInstrs);
        f64(p + "perf", outcome.perf);
        f64(p + "walkQueueDelay", outcome.walkQueueDelay);
        u64(p + "walks", outcome.walks);
        u64(p + "l2Misses", outcome.l2Misses);
        f64(p + "soloPerf", outcome.soloPerf);
        f64(p + "soloWalkQueueDelay", outcome.soloWalkQueueDelay);
        f64(p + "weightedSpeedup", outcome.weightedSpeedup);
        f64(p + "slowdown", outcome.slowdown);
    }
    return text;
}

} // namespace sw
