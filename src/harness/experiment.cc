#include "harness/experiment.hh"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "ckpt/checkpoint.hh"
#include "ckpt/ffwd.hh"
#include "core/softwalker.hh"
#include "prof/hostprof.hh"
#include "sim/logging.hh"
#include "trace/trace_recorder.hh"
#include "workload/generators.hh"

namespace sw {

namespace {

std::uint64_t
envUint(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value)
        fatal("environment variable %s='%s' is not a number", name, value);
    return parsed;
}

} // namespace

Gpu::RunLimits
defaultLimits()
{
    Gpu::RunLimits limits;
    // Post-warmup measurement region sized so the full figure sweep runs
    // in tens of minutes on one core; raise via the environment for
    // higher-fidelity runs (e.g. SW_QUOTA=24000 SW_WARMUP=8000).
    limits.warpInstrQuota = envUint("SW_QUOTA", 12000);
    limits.warmupInstrs = envUint("SW_WARMUP", 5000);
    limits.maxCycles = envUint("SW_MAXCYCLES", 4000000);
    return limits;
}

RunResult
collectResult(Gpu &gpu, const std::string &name)
{
    RunResult out;
    out.benchmark = name;
    out.mode = gpu.config().mode;
    out.cycles = gpu.measuredCycles();
    out.warpInstrs = gpu.instructionsIssued();
    out.perf = gpu.performance();

    const TranslationEngine::Stats &ts = gpu.engine().stats();
    out.l1TlbHits = ts.l1Hits;
    out.l1TlbMisses = ts.l1Misses;
    out.l2TlbAccesses = ts.l2Accesses;
    out.l2TlbHits = ts.l2Hits;
    out.l2TlbMisses = ts.l2Misses;
    out.l2MshrFailures = ts.l2MshrFailures;
    out.inTlbMshrAllocs = ts.inTlbMshrAllocs;
    out.inTlbMshrPeak = ts.inTlbMshrPeak;
    out.walks = ts.walksCompleted;
    out.avgWalkQueueDelay = ts.walkQueueDelay.mean();
    out.avgWalkAccessLatency = ts.walkAccessLatency.mean();
    out.avgWalkTotalLatency =
        ts.walkQueueDelay.mean() + ts.walkAccessLatency.mean();
    out.avgTranslationLatency = ts.translationLatency.mean();
    out.faults = ts.faults;
    std::uint64_t thread_instrs =
        out.warpInstrs * gpu.config().warpSize;
    out.l2TlbMpki = thread_instrs
        ? 1000.0 * double(ts.l2Misses) / double(thread_instrs) : 0.0;
    out.l2TlbHitRate = gpu.engine().l2Tlb().stats().hitRate();

    const Cache::Stats &l2d = gpu.memory().l2d().stats();
    out.l2dMissRate = l2d.missRate();
    out.l2dAccesses = l2d.accesses;
    out.l2dMshrFailures = l2d.mshrFailures;
    out.dramUtilisation = gpu.memory().dram().utilisation();

    Sm::Stats sm = gpu.aggregateSmStats();
    out.memStallCycles = sm.memStallCycles;
    out.issueSlotCycles = sm.issueSlotCycles;
    out.computeCycles = sm.computeCycles;
    out.pwIssueCycles = sm.pwIssueCycles;
    out.avgAccessLatency = sm.accessLatency.mean();

    if (SoftWalkerBackend *backend = softWalkerOf(gpu)) {
        out.swToHardware = backend->stats().toHardware;
        out.swToSoftware = backend->stats().toSoftware;
        PwWarp::Stats pw = backend->aggregatePwWarpStats();
        out.swBatches = pw.batches;
        out.swAvgBatchSize = pw.batchSize.mean();
        out.swInstructions = pw.instructionsIssued;
    }
    return out;
}

namespace {

/** Materialise the spec's workload source and resolve the run limits. */
std::unique_ptr<Workload>
materialiseWorkload(RunSpec &spec, Gpu::RunLimits &limits)
{
    int sources = (spec.benchmark != nullptr) +
                  !spec.workloadName.empty() + (spec.workload != nullptr) +
                  !spec.replayPath.empty();
    if (sources != 1)
        fatal("RunSpec needs exactly one workload source (benchmark, "
              "workloadName, workload, or replayPath); %d are set",
              sources);

    if (spec.benchmark) {
        limits = spec.limits.value_or(limitsFor(*spec.benchmark));
        return makeWorkload(*spec.benchmark, spec.footprintScale);
    }
    if (!spec.workloadName.empty()) {
        std::unique_ptr<Workload> workload =
            makeWorkload(spec.workloadName, spec.footprintScale);
        const BenchmarkInfo *info = findBenchmarkOrNull(spec.workloadName);
        limits = spec.limits.value_or(info ? limitsFor(*info)
                                           : defaultLimits());
        return workload;
    }
    if (spec.workload) {
        limits = spec.limits.value_or(defaultLimits());
        return std::move(spec.workload);
    }

    auto replay = std::make_unique<TraceWorkload>(spec.replayPath,
                                                  spec.replayEnd);
    replay->checkConfig(spec.cfg);
    if (spec.limits.has_value()) {
        limits = *spec.limits;
    } else {
        // Default to the recorded stopping conditions: a bare replay
        // reruns exactly the captured region.  All-zero means the trace
        // (e.g. a converted one) carries none.
        const TraceLimits &recorded = replay->recordedLimits();
        if (recorded.warpInstrQuota == 0 && recorded.maxCycles == 0) {
            limits = defaultLimits();
        } else {
            limits.warpInstrQuota = recorded.warpInstrQuota;
            limits.warmupInstrs = recorded.warmupInstrs;
            limits.maxCycles = recorded.maxCycles;
            limits.maxActiveWarps = recorded.maxActiveWarps;
        }
    }
    return replay;
}

} // namespace

RunResult
run(RunSpec spec)
{
    Gpu::RunLimits limits;
    const Observability *obs = spec.obs;
    TraceRecorder *recorder = nullptr;
    std::string name;
    std::unique_ptr<Gpu> gpu;
    {
        // Host-time attribution: everything before the event loop is
        // "setup" (workload materialisation, page-table build, GPU
        // construction, backend install).
        SW_PROF_SCOPE(prof::Zone::Setup);
        std::unique_ptr<Workload> workload =
            materialiseWorkload(spec, limits);

        // Large-page runs scatter the synthetic hot windows (see
        // SyntheticWorkload::setWindowSpread): real irregular working
        // sets are scattered objects, which is what makes them exceed
        // even 2 MB TLB coverage (§6.3, Fig 25).  Applied before any
        // recording wrapper so the recorded stream is the spread one.
        if (spec.cfg.pageBytes > 64ull * 1024) {
            if (auto *synthetic = dynamic_cast<SyntheticWorkload *>(
                    workload.get())) {
                synthetic->setWindowSpread(spec.cfg.pageBytes +
                                           64ull * 1024);
            }
        }

        if (!spec.recordPath.empty()) {
            auto recording = std::make_unique<TraceRecorder>(
                std::move(workload));
            recorder = recording.get();
            workload = std::move(recording);
        }

        name = workload->name();
        gpu = std::make_unique<Gpu>(spec.cfg, std::move(workload));
        installWalkBackend(*gpu);
        if (obs && obs->any())
            gpu->installObservability(*obs);
    }
    // Recording captures the workload stream as the *detailed* engine
    // consumes it; fast-forward and checkpoint segmentation consume the
    // stream outside (or before) a recorded region, so the combinations
    // would silently write a partial trace.
    if (!spec.recordPath.empty() &&
        (spec.ffwdInstrs > 0 || spec.checkpointAtInstrs > 0 ||
         !spec.checkpointIn.empty())) {
        fatal("trace recording cannot be combined with fast-forward or "
              "checkpointing");
    }

    std::uint64_t total_fetch = limits.warpInstrQuota + limits.warmupInstrs;
    if (!spec.checkpointIn.empty()) {
        if (spec.ffwdInstrs > 0 || spec.checkpointAtInstrs > 0) {
            fatal("checkpointIn resumes a finished warmup; it cannot be "
                  "combined with ffwdInstrs or checkpointAtInstrs");
        }
        CheckpointMeta meta = restoreCheckpoint(*gpu, spec.checkpointIn);
        if (meta.instrsFetched > total_fetch) {
            fatal("checkpoint %s was taken at %llu fetched instructions, "
                  "past this run's quota of %llu",
                  spec.checkpointIn.c_str(),
                  static_cast<unsigned long long>(meta.instrsFetched),
                  static_cast<unsigned long long>(total_fetch));
        }
        std::uint64_t warmup_left =
            limits.warmupInstrs > meta.instrsFetched
                ? limits.warmupInstrs - meta.instrsFetched : 0;
        gpu->runSegment(total_fetch - meta.instrsFetched, warmup_left,
                        limits);
    } else if (spec.checkpointAtInstrs > 0) {
        if (spec.checkpointOut.empty())
            fatal("checkpointAtInstrs set without a checkpointOut path");
        if (spec.checkpointAtInstrs > total_fetch) {
            fatal("checkpoint barrier %llu lies past the run's quota %llu",
                  static_cast<unsigned long long>(spec.checkpointAtInstrs),
                  static_cast<unsigned long long>(total_fetch));
        }
        if (spec.ffwdInstrs > 0) {
            fastForward(*gpu, spec.ffwdInstrs, limits);
            gpu->resetAllStats();
        }
        std::uint64_t barrier = spec.checkpointAtInstrs;
        gpu->runSegment(barrier, std::min(limits.warmupInstrs, barrier),
                        limits);
        saveCheckpoint(*gpu, barrier, spec.checkpointOut);
        gpu->runSegment(total_fetch - barrier,
                        limits.warmupInstrs > barrier
                            ? limits.warmupInstrs - barrier : 0,
                        limits);
    } else if (spec.ffwdInstrs > 0) {
        fastForward(*gpu, spec.ffwdInstrs, limits);
        gpu->resetAllStats();
        gpu->run(limits);
    } else {
        gpu->run(limits);
    }
    SW_PROF_SCOPE(prof::Zone::Report);
    RunResult result = collectResult(*gpu, name);
    if (recorder) {
        TraceLimits recorded;
        recorded.warpInstrQuota = limits.warpInstrQuota;
        recorded.warmupInstrs = limits.warmupInstrs;
        recorded.maxCycles = limits.maxCycles;
        recorded.maxActiveWarps = limits.maxActiveWarps;
        recorder->writeFile(spec.recordPath, spec.cfg, recorded);
    }
    // The GPU (and every registered counter) dies on return; snapshot the
    // registry so dumps outlive the run, and disarm the sampler before its
    // event-queue pointer dangles.
    if (obs && obs->registry)
        obs->registry->capture();
    if (obs && obs->sampler)
        obs->sampler->uninstall();
    return result;
}

Gpu::RunLimits
limitsFor(const BenchmarkInfo &info)
{
    Gpu::RunLimits limits = defaultLimits();
    if (!info.irregular) {
        // Regular workloads run at high IPC, so the kernel-start TLB-fill
        // storm (one cold walk per warp) spans many instructions; warm
        // past it, then measure a comparable steady-state region.
        limits.warpInstrQuota = envUint("SW_QUOTA_REG", 40000);
        limits.warmupInstrs = envUint("SW_WARMUP_REG", 80000);
    }
    return limits;
}

double
speedup(const RunResult &base, const RunResult &opt)
{
    SW_ASSERT(base.perf > 0.0, "baseline made no progress");
    return opt.perf / base.perf;
}

std::vector<double>
speedups(const std::vector<RunResult> &base,
         const std::vector<RunResult> &opt)
{
    SW_ASSERT(base.size() == opt.size(), "result vectors differ in size");
    std::vector<double> out;
    out.reserve(base.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        out.push_back(speedup(base[i], opt[i]));
    return out;
}

} // namespace sw
