/**
 * @file
 * SweepRunner: a thread-pool job engine for independent simulations.
 *
 * Every figure in the paper is a sweep — N benchmarks x M configurations,
 * each pair a completely independent simulation (its own Gpu, EventQueue,
 * Rng; no shared mutable state).  SweepRunner exploits that: jobs are
 * submitted in the order the figure wants its results, run on up to
 * SW_JOBS worker threads (default: std::thread::hardware_concurrency()),
 * and returned in submission order, so a harness's printed output is
 * byte-identical no matter how many workers ran underneath it.
 *
 * The pool never oversubscribes: the worker count is jobs() clamped by
 * hardware_concurrency() and by the number of queued jobs (see
 * effectiveWorkers()).  Whenever that clamp leaves a single worker —
 * SW_JOBS=1, a one-core host, or a one-job sweep — jobs run inline on
 * the calling thread, in submission order, with the classic per-job
 * progress line printed *before* each run, with zero pool overhead.
 * Every completed job (serial or parallel) then emits one buffered
 * "... done (k/n, <ms>, ETA <s>)" line, so long sweeps show per-job
 * wall-clock and a remaining-time estimate as they go, and a one-line
 * end-of-sweep summary (total time, worker count, min/mean/max job time)
 * closes any sweep that printed progress.  Parallel output stays readable
 * because each line is one atomic fprintf (never torn); per-job times are
 * kept in submission order for lastJobMillis().
 *
 * Determinism: a simulation's outcome depends only on its (config,
 * benchmark, limits, scale) inputs — the worker it lands on, and whatever
 * else runs concurrently, must not matter.  tests/harness/test_sweep.cc
 * holds that property down with field-by-field RunResult comparisons.
 */

#ifndef SW_HARNESS_SWEEP_HH
#define SW_HARNESS_SWEEP_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace sw {

/** One independent (configuration, benchmark) simulation job. */
struct SweepJob
{
    GpuConfig cfg;
    const BenchmarkInfo *info = nullptr;
    Gpu::RunLimits limits;
    double footprintScale = 1.0;
    /**
     * Optional observability bundle for this job only.  The bundle must
     * not be shared with a concurrently running job: registries, tracers
     * and samplers are single-run instruments.
     */
    const Observability *obs = nullptr;
    /** Progress label, e.g. "baseline"; empty disables the progress line. */
    std::string label;
};

/** Runs submitted jobs concurrently; results come back in submission order. */
class SweepRunner
{
  public:
    /** A job is anything that produces a RunResult. */
    using JobFn = std::function<RunResult()>;

    /**
     * Worker count from the environment: SW_JOBS when set (must be a
     * positive integer), else hardware_concurrency(), else 1.
     */
    static unsigned defaultJobs();

    /** @param jobs worker count; 0 means defaultJobs(). */
    explicit SweepRunner(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }
    std::size_t submitted() const { return tasks.size(); }

    /**
     * Worker threads a run of @p pending jobs would actually use: jobs()
     * clamped by hardware_concurrency() and by the job count.  Requesting
     * more workers than cores buys nothing on independent CPU-bound
     * simulations — it only adds scheduler churn (a measured 0.86x on a
     * one-core box) — so the pool never oversubscribes.  A result of
     * <= 1 means run() takes the inline serial path with zero pool
     * overhead.
     */
    unsigned effectiveWorkers(std::size_t pending) const;

    /** Queue a standard benchmark job. @return its result index. */
    std::size_t submit(SweepJob job);

    /**
     * Queue an arbitrary job.  @p progress is the full progress line
     * (without trailing newline), or empty for silence.
     * @return its result index.
     */
    std::size_t submit(std::string progress, JobFn fn);

    /**
     * Run every queued job and return results in submission order.
     * Clears the queue.  If a job threw, the first exception (in
     * submission order for jobs()==1, completion order otherwise) is
     * rethrown after all workers have stopped; remaining queued jobs are
     * abandoned.
     */
    std::vector<RunResult> run();

    /**
     * Wall-clock milliseconds of each job from the most recent run(), in
     * submission order (0.0 for jobs abandoned after a failure).  The
     * sweep benchmarks record these in BENCH_sweep.json so per-job cost
     * is comparable across hosts alongside the RunManifest.
     */
    const std::vector<double> &lastJobMillis() const { return jobMillis; }

  private:
    struct Task
    {
        std::string progress;
        JobFn fn;
    };

    std::vector<RunResult> runSerial();
    std::vector<RunResult> runParallel(unsigned workers);

    unsigned jobs_;
    std::vector<Task> tasks;
    std::vector<double> jobMillis;
};

} // namespace sw

#endif // SW_HARNESS_SWEEP_HH
