#include "harness/sampled.hh"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "ckpt/ffwd.hh"
#include "core/softwalker.hh"
#include "harness/report.hh"
#include "sim/logging.hh"

namespace sw {

namespace {

/** Collects every numeric visitFields() field into a name → value map. */
class CaptureVisitor : public RunResultFieldVisitor
{
  public:
    explicit CaptureVisitor(std::map<std::string, double> &out) : out_(out)
    {
    }

    void str(const char *, const std::string &) override {}
    void u64(const char *name, std::uint64_t value) override
    {
        out_[name] = double(value);
    }
    void f64(const char *name, double value) override
    {
        out_[name] = value;
    }

  private:
    std::map<std::string, double> &out_;
};

double
weightedMean(const std::vector<RunResult> &windows,
             const SamplingPlan &plan, double RunResult::*field)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < windows.size(); ++i)
        sum += plan.windows[i].weight * windows[i].*field;
    return sum;
}

template <typename T>
std::uint64_t
extrapolated(const std::vector<RunResult> &windows,
             const SamplingPlan &plan, T RunResult::*field)
{
    double per_window = 0.0;
    for (std::size_t i = 0; i < windows.size(); ++i)
        per_window += plan.windows[i].weight * double(windows[i].*field);
    return std::uint64_t(std::llround(per_window *
                                      double(plan.totalWindows)));
}

} // namespace

SampledRunResult
runSampled(RunSpec spec, SamplingOptions opts,
           const SamplingPlan *sharedPlan)
{
    if (spec.replayPath.empty())
        fatal("phase sampling needs a replayPath workload source");
    if (!spec.recordPath.empty() || spec.ffwdInstrs > 0 ||
        spec.checkpointAtInstrs > 0 || !spec.checkpointIn.empty()) {
        fatal("phase sampling drives its own fast-forward; recording and "
              "checkpoint fields must be unset");
    }

    Gpu::RunLimits limits = spec.limits.value_or(defaultLimits());
    auto replay = std::make_unique<TraceWorkload>(spec.replayPath,
                                                  TraceEndPolicy::Drain);
    replay->checkConfig(spec.cfg);

    opts.pageBytes = spec.cfg.pageBytes;
    SampledRunResult out;
    if (sharedPlan != nullptr) {
        SW_ASSERT(!sharedPlan->windows.empty(),
                  "shared sampling plan has no windows");
        const SampleWindow &last = sharedPlan->windows.back();
        std::uint64_t total = replay->trace().totalInstrs();
        if (last.startInstr + last.instrs > total) {
            fatal("shared sampling plan overruns the trace: window ends at "
                  "%llu of %llu instrs",
                  static_cast<unsigned long long>(last.startInstr +
                                                  last.instrs),
                  static_cast<unsigned long long>(total));
        }
        out.plan = *sharedPlan;
    } else {
        out.plan = buildSamplingPlan(replay->trace(), opts);
    }

    std::string name = replay->name();
    Gpu gpu(spec.cfg, std::move(replay));
    installWalkBackend(gpu);

    // Alternate functional fast-forward (stream gaps) and detailed
    // segments (representative windows).  Fast-forward carries no timing
    // state, so each window is preceded by a timed-but-unmeasured warmup
    // carved out of its gap: the machine re-fills MSHRs, queues, and
    // outstanding walks before measurement starts (runSegment's built-in
    // warmup handles the stat reset).  maxCycles acts as a fresh cap per
    // detailed segment.
    std::uint64_t pos = 0;
    for (const SampleWindow &window : out.plan.windows) {
        SW_ASSERT(window.startInstr >= pos,
                  "sampling plan windows overlap");
        std::uint64_t gap = window.startInstr - pos;
        std::uint64_t warmup = std::min(opts.windowWarmupInstrs, gap);
        if (gap > warmup)
            fastForward(gpu, gap - warmup, limits);
        Gpu::RunLimits segment = limits;
        segment.maxCycles = gpu.cycles() + limits.maxCycles;
        segment.restartSkewCycles = opts.restartSkewCycles;
        if (warmup == 0)
            gpu.resetAllStats();   // runSegment only resets after a warmup
        gpu.runSegment(warmup + window.instrs, warmup, segment);
        out.windows.push_back(collectResult(gpu, name));
        out.detailedInstrsRun += warmup + window.instrs;
        pos = window.startInstr + window.instrs;
    }

    // Reconstruct: weighted estimate of every numeric field.
    std::vector<std::map<std::string, double>> captured(out.windows.size());
    std::vector<double> weights;
    for (std::size_t i = 0; i < out.windows.size(); ++i) {
        CaptureVisitor visitor(captured[i]);
        visitFields(out.windows[i], visitor);
        weights.push_back(out.plan.windows[i].weight);
    }
    for (const auto &entry : captured.front()) {
        std::vector<double> values;
        for (const auto &window : captured)
            values.push_back(window.at(entry.first));
        out.metrics[entry.first] = weightedEstimate(values, weights);
    }

    const std::vector<RunResult> &w = out.windows;
    const SamplingPlan &plan = out.plan;
    RunResult &c = out.combined;
    c.benchmark = name;
    c.mode = spec.cfg.mode;
    c.cycles = extrapolated(w, plan, &RunResult::cycles);
    c.warpInstrs = extrapolated(w, plan, &RunResult::warpInstrs);
    c.l1TlbHits = extrapolated(w, plan, &RunResult::l1TlbHits);
    c.l1TlbMisses = extrapolated(w, plan, &RunResult::l1TlbMisses);
    c.l2TlbAccesses = extrapolated(w, plan, &RunResult::l2TlbAccesses);
    c.l2TlbHits = extrapolated(w, plan, &RunResult::l2TlbHits);
    c.l2TlbMisses = extrapolated(w, plan, &RunResult::l2TlbMisses);
    c.l2MshrFailures = extrapolated(w, plan, &RunResult::l2MshrFailures);
    c.inTlbMshrAllocs = extrapolated(w, plan, &RunResult::inTlbMshrAllocs);
    c.inTlbMshrPeak = extrapolated(w, plan, &RunResult::inTlbMshrPeak);
    c.walks = extrapolated(w, plan, &RunResult::walks);
    c.avgWalkQueueDelay = weightedMean(w, plan,
                                       &RunResult::avgWalkQueueDelay);
    c.avgWalkAccessLatency =
        weightedMean(w, plan, &RunResult::avgWalkAccessLatency);
    c.avgWalkTotalLatency =
        weightedMean(w, plan, &RunResult::avgWalkTotalLatency);
    c.avgTranslationLatency =
        weightedMean(w, plan, &RunResult::avgTranslationLatency);
    // Ratio metrics whose numerator and denominator are both extrapolated
    // counters reconstruct as the ratio of the totals, not the weighted
    // mean of per-window ratios.  The distinction matters: perf is
    // instrs/cycles and the windows hold (nearly) equal instruction
    // counts, so the whole-run value is the *harmonic* mean of the
    // per-window rates — on a trace whose perf drifts monotonically
    // (TLB warm-up), the arithmetic mean overestimates by the full
    // spread of the drift.
    c.perf = c.cycles ? double(c.warpInstrs) / double(c.cycles) : 0.0;
    c.l2TlbMpki = c.warpInstrs
        ? 1000.0 * double(c.l2TlbMisses) /
              double(c.warpInstrs * spec.cfg.warpSize)
        : 0.0;
    c.l2TlbHitRate = c.l2TlbAccesses
        ? double(c.l2TlbHits) / double(c.l2TlbAccesses)
        : 0.0;
    c.faults = extrapolated(w, plan, &RunResult::faults);
    c.l2dMissRate = weightedMean(w, plan, &RunResult::l2dMissRate);
    c.l2dAccesses = extrapolated(w, plan, &RunResult::l2dAccesses);
    c.l2dMshrFailures = extrapolated(w, plan, &RunResult::l2dMshrFailures);
    c.dramUtilisation = weightedMean(w, plan, &RunResult::dramUtilisation);
    c.memStallCycles = extrapolated(w, plan, &RunResult::memStallCycles);
    c.issueSlotCycles = extrapolated(w, plan, &RunResult::issueSlotCycles);
    c.computeCycles = extrapolated(w, plan, &RunResult::computeCycles);
    c.pwIssueCycles = extrapolated(w, plan, &RunResult::pwIssueCycles);
    c.avgAccessLatency = weightedMean(w, plan,
                                      &RunResult::avgAccessLatency);
    c.swToHardware = extrapolated(w, plan, &RunResult::swToHardware);
    c.swToSoftware = extrapolated(w, plan, &RunResult::swToSoftware);
    c.swBatches = extrapolated(w, plan, &RunResult::swBatches);
    c.swAvgBatchSize = weightedMean(w, plan, &RunResult::swAvgBatchSize);
    c.swInstructions = extrapolated(w, plan, &RunResult::swInstructions);
    return out;
}

void
writeSampledJson(std::ostream &out, const SampledRunResult &result)
{
    char buf[256];
    out << "{\n  \"schema\": \"softwalker.sampled/1\",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"window_instrs\": %llu,\n  \"skip_instrs\": %llu,\n"
                  "  \"total_instrs\": %llu,\n"
                  "  \"total_windows\": %llu,\n  \"clusters\": %u,\n"
                  "  \"detailed_instrs\": %llu,\n"
                  "  \"detail_ratio\": %.6f,\n",
                  static_cast<unsigned long long>(result.plan.windowInstrs),
                  static_cast<unsigned long long>(result.plan.skipInstrs),
                  static_cast<unsigned long long>(result.plan.totalInstrs),
                  static_cast<unsigned long long>(result.plan.totalWindows),
                  result.plan.clusters,
                  static_cast<unsigned long long>(
                      result.detailedInstrsRun ? result.detailedInstrsRun
                                               : result.plan.detailedInstrs()),
                  result.detailRatio());
    out << buf;
    out << "  \"windows\": [";
    for (std::size_t i = 0; i < result.plan.windows.size(); ++i) {
        const SampleWindow &window = result.plan.windows[i];
        std::snprintf(buf, sizeof(buf),
                      "%s\n    {\"index\": %llu, \"start\": %llu, "
                      "\"instrs\": %llu, \"cluster\": %u, "
                      "\"weight\": %.6f}",
                      i ? "," : "",
                      static_cast<unsigned long long>(window.index),
                      static_cast<unsigned long long>(window.startInstr),
                      static_cast<unsigned long long>(window.instrs),
                      window.cluster, window.weight);
        out << buf;
    }
    out << (result.plan.windows.empty() ? "],\n" : "\n  ],\n");
    out << "  \"estimates\": {";
    bool first = true;
    for (const auto &entry : result.metrics) {
        std::snprintf(buf, sizeof(buf),
                      "%s\n    \"%s\": {\"mean\": %.9g, \"spread\": %.9g}",
                      first ? "" : ",", entry.first.c_str(),
                      entry.second.mean, entry.second.spread);
        out << buf;
        first = false;
    }
    out << (result.metrics.empty() ? "}\n" : "\n  }\n");
    out << "}\n";
}

} // namespace sw
