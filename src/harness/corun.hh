/**
 * @file
 * Multi-tenant co-run harness: run one workload per tenant on a
 * partitioned machine (docs/MULTITENANCY.md), plus each tenant alone on
 * an identical slice, and report the standard multi-programmed metrics —
 * per-tenant slowdown, weighted speedup / system throughput (STP), and
 * min/max fairness — alongside the walk-queue interference the paper's
 * contention analysis centres on.
 *
 * The co-run and every solo baseline are full deterministic simulations:
 * corunFingerprint() renders every double with %a, so two runs of the
 * same spec are comparable bit-for-bit (the CI co-run gate).
 */

#ifndef SW_HARNESS_CORUN_HH
#define SW_HARNESS_CORUN_HH

#include <optional>
#include <string>
#include <vector>

#include "gpu/gpu.hh"
#include "sim/config.hh"

namespace sw {

/** One tenant of a co-run: a workload-factory name plus its scale. */
struct CoRunTenant
{
    /** Factory-registry name (benchmark, scheme like "trace:...", ...). */
    std::string workload;
    double footprintScale = 1.0;
};

/** Everything one co-run experiment needs. */
struct CoRunSpec
{
    /**
     * Machine configuration.  numTenants is overwritten with
     * tenants.size(); set migPartitioning / pwArbitration / sub-entry
     * knobs here to pick the sharing regime under test.
     */
    GpuConfig cfg;
    std::vector<CoRunTenant> tenants;
    /** Stopping conditions for the co-run AND each solo baseline. */
    std::optional<Gpu::RunLimits> limits;
    /**
     * Also run each tenant alone on an identical slice (same SM count;
     * under MIG, an L2 TLB scaled to its way share) to price the
     * interference.  Off = slowdown/weighted-speedup fields stay zero.
     */
    bool soloBaselines = true;
};

/** What one tenant experienced in the co-run (and alone, if priced). */
struct TenantOutcome
{
    std::string workload;
    Asid asid = 0;

    // Co-run, over this tenant's SM slice
    std::uint64_t warpInstrs = 0;
    double perf = 0.0;              ///< slice warp instructions per cycle
    double walkQueueDelay = 0.0;    ///< mean; the interference channel
    std::uint64_t walks = 0;
    std::uint64_t l2Misses = 0;

    // Solo baseline (zero when CoRunSpec::soloBaselines is off)
    double soloPerf = 0.0;
    double soloWalkQueueDelay = 0.0;
    double weightedSpeedup = 0.0;   ///< perf / soloPerf
    double slowdown = 0.0;          ///< soloPerf / perf (>= 1 normally)
};

/** The whole experiment: per-tenant outcomes + system-level metrics. */
struct CoRunResult
{
    std::vector<TenantOutcome> tenants;
    Cycle cycles = 0;               ///< co-run measured cycles

    // Zero when solo baselines are off
    double systemThroughput = 0.0;  ///< STP: sum of weighted speedups
    double avgSlowdown = 0.0;       ///< ANTT analogue over tenants
    double fairness = 0.0;          ///< min/max weighted speedup (1 = fair)
};

/**
 * Solo-baseline machine for tenant @p asid of @p cfg: single-tenant,
 * numSms shrunk to the tenant's slice, and — under MIG partitioning —
 * the L2 TLB shrunk to the tenant's way share, so the baseline owns
 * exactly the private resources the co-run guarantees it.
 */
GpuConfig soloConfigFor(const GpuConfig &cfg, Asid asid);

/** Run the co-run (and solo baselines) described by @p spec. */
CoRunResult runCoRun(const CoRunSpec &spec);

/**
 * Exact textual fingerprint (every field, doubles as %a): two runs are
 * field-identical iff their fingerprints compare equal.
 */
std::string corunFingerprint(const CoRunResult &result);

} // namespace sw

#endif // SW_HARNESS_CORUN_HH
