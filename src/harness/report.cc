#include "harness/report.hh"

#include <ostream>
#include <sstream>

#include "obs/stat_registry.hh"
#include "sim/logging.hh"

namespace sw {

void
visitFields(const RunResult &r, RunResultFieldVisitor &v)
{
    // Identity + progress
    v.str("benchmark", r.benchmark);
    v.str("mode", toString(r.mode));
    v.u64("cycles", r.cycles);
    v.u64("warp_instrs", r.warpInstrs);
    v.f64("perf", r.perf);

    // Translation path
    v.u64("l1_tlb_hits", r.l1TlbHits);
    v.u64("l1_tlb_misses", r.l1TlbMisses);
    v.u64("l2_tlb_accesses", r.l2TlbAccesses);
    v.u64("l2_tlb_hits", r.l2TlbHits);
    v.u64("l2_tlb_misses", r.l2TlbMisses);
    v.f64("l2_tlb_mpki", r.l2TlbMpki);
    v.f64("l2_tlb_hit_rate", r.l2TlbHitRate);
    v.u64("l2_mshr_failures", r.l2MshrFailures);
    v.u64("in_tlb_mshr_allocs", r.inTlbMshrAllocs);
    v.u64("in_tlb_mshr_peak", r.inTlbMshrPeak);
    v.u64("walks", r.walks);
    v.f64("walk_queue_delay", r.avgWalkQueueDelay);
    v.f64("walk_access_latency", r.avgWalkAccessLatency);
    v.f64("walk_total_latency", r.avgWalkTotalLatency);
    v.f64("translation_latency", r.avgTranslationLatency);
    v.u64("faults", r.faults);

    // Data memory
    v.f64("l2d_miss_rate", r.l2dMissRate);
    v.u64("l2d_accesses", r.l2dAccesses);
    v.u64("l2d_mshr_failures", r.l2dMshrFailures);
    v.f64("dram_utilisation", r.dramUtilisation);

    // SM scheduler accounting
    v.u64("mem_stall_cycles", r.memStallCycles);
    v.u64("issue_slot_cycles", r.issueSlotCycles);
    v.u64("compute_cycles", r.computeCycles);
    v.u64("pw_issue_cycles", r.pwIssueCycles);
    v.f64("access_latency", r.avgAccessLatency);

    // SoftWalker internals
    v.u64("sw_to_hardware", r.swToHardware);
    v.u64("sw_to_software", r.swToSoftware);
    v.u64("sw_batches", r.swBatches);
    v.f64("sw_avg_batch_size", r.swAvgBatchSize);
    v.u64("sw_instructions", r.swInstructions);
}

namespace {

/** Emits `"name":value` pairs into one JSON object. */
class JsonFieldWriter : public RunResultFieldVisitor
{
  public:
    void
    str(const char *name, const std::string &value) override
    {
        sep();
        out << '"' << name << "\":\"" << jsonEscape(value) << '"';
    }

    void
    u64(const char *name, std::uint64_t value) override
    {
        sep();
        out << '"' << name << "\":"
            << strprintf("%llu", (unsigned long long)value);
    }

    void
    f64(const char *name, double value) override
    {
        sep();
        out << '"' << name << "\":" << strprintf("%.6g", value);
    }

    std::string take() { return "{" + out.str() + "}"; }

  private:
    void
    sep()
    {
        if (!first)
            out << ',';
        first = false;
    }

    std::ostringstream out;
    bool first = true;
};

/** Collects the field names: the CSV header row. */
class CsvHeaderWriter : public RunResultFieldVisitor
{
  public:
    void str(const char *name, const std::string &) override { add(name); }
    void u64(const char *name, std::uint64_t) override { add(name); }
    void f64(const char *name, double) override { add(name); }

    std::string take() { return out.str(); }

  private:
    void
    add(const char *name)
    {
        if (!first)
            out << ',';
        first = false;
        out << name;
    }

    std::ostringstream out;
    bool first = true;
};

/** Collects the field values: one CSV data row. */
class CsvRowWriter : public RunResultFieldVisitor
{
  public:
    void
    str(const char *, const std::string &value) override
    {
        add(value);
    }

    void
    u64(const char *, std::uint64_t value) override
    {
        add(strprintf("%llu", (unsigned long long)value));
    }

    void
    f64(const char *, double value) override
    {
        add(strprintf("%.6g", value));
    }

    std::string take() { return out.str(); }

  private:
    void
    add(const std::string &value)
    {
        if (!first)
            out << ',';
        first = false;
        out << value;
    }

    std::ostringstream out;
    bool first = true;
};

/** Flattens every field into one exact string (%a for doubles). */
class FingerprintWriter : public RunResultFieldVisitor
{
  public:
    std::string text;

    void
    str(const char *name, const std::string &value) override
    {
        text += name;
        text += '=';
        text += value;
        text += '\n';
    }

    void
    u64(const char *name, std::uint64_t value) override
    {
        text += strprintf("%s=%llu\n", name, (unsigned long long)value);
    }

    void
    f64(const char *name, double value) override
    {
        // %a is exact: any bit difference in a double shows up.
        text += strprintf("%s=%a\n", name, value);
    }
};

} // namespace

std::string
fingerprint(const RunResult &r)
{
    FingerprintWriter writer;
    visitFields(r, writer);
    return writer.text;
}

std::string
toJson(const RunResult &r)
{
    JsonFieldWriter writer;
    visitFields(r, writer);
    return writer.take();
}

std::string
toJson(const std::vector<RunResult> &results)
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            out << ",";
        out << toJson(results[i]);
    }
    out << "]";
    return out.str();
}

std::string
csvHeader()
{
    CsvHeaderWriter writer;
    visitFields(RunResult{}, writer);
    return writer.take();
}

std::string
toCsvRow(const RunResult &r)
{
    CsvRowWriter writer;
    visitFields(r, writer);
    return writer.take();
}

void
writeCsv(std::ostream &out, const std::vector<RunResult> &results)
{
    out << csvHeader() << '\n';
    for (const RunResult &result : results)
        out << toCsvRow(result) << '\n';
}

} // namespace sw
