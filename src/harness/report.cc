#include "harness/report.hh"

#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace sw {

namespace {

/** Escape a string for a JSON literal (our names are tame, but be safe). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char ch : text) {
        switch (ch) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out += ch; break;
        }
    }
    return out;
}

} // namespace

std::string
toJson(const RunResult &r)
{
    std::ostringstream out;
    out << "{"
        << "\"benchmark\":\"" << jsonEscape(r.benchmark) << "\","
        << "\"mode\":\"" << toString(r.mode) << "\","
        << "\"cycles\":" << r.cycles << ","
        << "\"warp_instrs\":" << r.warpInstrs << ","
        << "\"perf\":" << r.perf << ","
        << "\"l1_tlb_hits\":" << r.l1TlbHits << ","
        << "\"l1_tlb_misses\":" << r.l1TlbMisses << ","
        << "\"l2_tlb_accesses\":" << r.l2TlbAccesses << ","
        << "\"l2_tlb_hits\":" << r.l2TlbHits << ","
        << "\"l2_tlb_misses\":" << r.l2TlbMisses << ","
        << "\"l2_tlb_mpki\":" << r.l2TlbMpki << ","
        << "\"l2_mshr_failures\":" << r.l2MshrFailures << ","
        << "\"in_tlb_mshr_allocs\":" << r.inTlbMshrAllocs << ","
        << "\"in_tlb_mshr_peak\":" << r.inTlbMshrPeak << ","
        << "\"walks\":" << r.walks << ","
        << "\"walk_queue_delay\":" << r.avgWalkQueueDelay << ","
        << "\"walk_access_latency\":" << r.avgWalkAccessLatency << ","
        << "\"translation_latency\":" << r.avgTranslationLatency << ","
        << "\"l2d_miss_rate\":" << r.l2dMissRate << ","
        << "\"dram_utilisation\":" << r.dramUtilisation << ","
        << "\"mem_stall_cycles\":" << r.memStallCycles << ","
        << "\"pw_issue_cycles\":" << r.pwIssueCycles << ","
        << "\"sw_to_hardware\":" << r.swToHardware << ","
        << "\"sw_to_software\":" << r.swToSoftware << ","
        << "\"sw_batches\":" << r.swBatches << ","
        << "\"sw_avg_batch_size\":" << r.swAvgBatchSize << ","
        << "\"faults\":" << r.faults
        << "}";
    return out.str();
}

std::string
toJson(const std::vector<RunResult> &results)
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            out << ",";
        out << toJson(results[i]);
    }
    out << "]";
    return out.str();
}

std::string
csvHeader()
{
    return "benchmark,mode,cycles,warp_instrs,perf,l2_tlb_mpki,"
           "l2_mshr_failures,in_tlb_mshr_allocs,walks,walk_queue_delay,"
           "walk_access_latency,translation_latency,l2d_miss_rate,"
           "dram_utilisation,mem_stall_cycles,sw_to_software,faults";
}

std::string
toCsvRow(const RunResult &r)
{
    return strprintf(
        "%s,%s,%llu,%llu,%.6f,%.4f,%llu,%llu,%llu,%.2f,%.2f,%.2f,%.4f,"
        "%.4f,%llu,%llu,%llu",
        r.benchmark.c_str(), toString(r.mode),
        (unsigned long long)r.cycles, (unsigned long long)r.warpInstrs,
        r.perf, r.l2TlbMpki, (unsigned long long)r.l2MshrFailures,
        (unsigned long long)r.inTlbMshrAllocs, (unsigned long long)r.walks,
        r.avgWalkQueueDelay, r.avgWalkAccessLatency,
        r.avgTranslationLatency, r.l2dMissRate, r.dramUtilisation,
        (unsigned long long)r.memStallCycles,
        (unsigned long long)r.swToSoftware, (unsigned long long)r.faults);
}

void
writeCsv(std::ostream &out, const std::vector<RunResult> &results)
{
    out << csvHeader() << '\n';
    for (const RunResult &result : results)
        out << toCsvRow(result) << '\n';
}

} // namespace sw
