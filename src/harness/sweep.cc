#include "harness/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "sim/logging.hh"

namespace sw {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
millisSince(SteadyClock::time_point start)
{
    return std::chrono::duration<double, std::milli>(SteadyClock::now() -
                                                     start)
        .count();
}

/**
 * Remaining-work estimate from overall throughput: jobs completed per
 * wall-clock second so far, applied to the jobs left.  Counting from the
 * sweep start (rather than averaging per-job times) makes the estimate
 * worker-aware for free.
 */
std::string
etaSuffix(double elapsed_ms, std::size_t done, std::size_t total)
{
    if (done == 0 || done >= total || elapsed_ms <= 0.0)
        return "";
    double eta_s =
        elapsed_ms / 1e3 / double(done) * double(total - done);
    return strprintf(", ETA %.1f s", eta_s);
}

} // namespace

unsigned
SweepRunner::defaultJobs()
{
    if (const char *env = std::getenv("SW_JOBS"); env && *env) {
        char *end = nullptr;
        unsigned long parsed = std::strtoul(env, &end, 10);
        if (end == env || *end != '\0' || parsed == 0)
            fatal("SW_JOBS='%s' is not a positive integer", env);
        return static_cast<unsigned>(parsed);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{
}

std::size_t
SweepRunner::submit(SweepJob job)
{
    SW_ASSERT(job.info != nullptr, "sweep job without a benchmark");
    std::string progress;
    if (!job.label.empty()) {
        progress = strprintf("  [%s] %s...", job.label.c_str(),
                             job.info->abbr.c_str());
    }
    return submit(std::move(progress), [job = std::move(job)]() {
        // Specs are built per execution: RunSpec is move-only (it can
        // carry a workload instance) while queued JobFns must stay
        // copyable, and the copyable SweepJob holds everything needed.
        RunSpec spec;
        spec.cfg = job.cfg;
        spec.benchmark = job.info;
        spec.footprintScale = job.footprintScale;
        spec.limits = job.limits;
        spec.obs = job.obs;
        return sw::run(std::move(spec));
    });
}

std::size_t
SweepRunner::submit(std::string progress, JobFn fn)
{
    SW_ASSERT(fn != nullptr, "sweep job without a function");
    tasks.push_back(Task{std::move(progress), std::move(fn)});
    return tasks.size() - 1;
}

unsigned
SweepRunner::effectiveWorkers(std::size_t pending) const
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    unsigned workers = std::min(jobs_, hw);
    if (pending < workers)
        workers = static_cast<unsigned>(pending);
    return workers;
}

std::vector<RunResult>
SweepRunner::run()
{
    unsigned workers = effectiveWorkers(tasks.size());
    bool verbose = false;
    for (const Task &task : tasks)
        verbose = verbose || !task.progress.empty();
    std::size_t count = tasks.size();
    jobMillis.assign(count, 0.0);

    SteadyClock::time_point begin = SteadyClock::now();
    std::vector<RunResult> results =
        workers <= 1 ? runSerial() : runParallel(workers);
    double total_ms = millisSince(begin);

    if (verbose && count > 0) {
        double min_ms = jobMillis[0], max_ms = jobMillis[0], sum_ms = 0.0;
        for (double ms : jobMillis) {
            min_ms = std::min(min_ms, ms);
            max_ms = std::max(max_ms, ms);
            sum_ms += ms;
        }
        std::fprintf(stderr,
                     "  sweep: %zu jobs in %.1f s (workers=%u, per-job "
                     "min/mean/max %.0f/%.0f/%.0f ms)\n",
                     count, total_ms / 1e3, workers, min_ms,
                     sum_ms / double(count), max_ms);
    }
    tasks.clear();
    return results;
}

std::vector<RunResult>
SweepRunner::runSerial()
{
    // The SW_JOBS=1 contract: the historical serial loop — same order,
    // same pre-run progress lines, exceptions surfacing straight from the
    // failing job — plus a per-job completion line with the wall clock
    // and the sweep's ETA.
    SteadyClock::time_point begin = SteadyClock::now();
    std::vector<RunResult> results;
    results.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        Task &task = tasks[i];
        if (!task.progress.empty())
            std::fprintf(stderr, "%s\n", task.progress.c_str());
        SteadyClock::time_point job_begin = SteadyClock::now();
        results.push_back(task.fn());
        jobMillis[i] = millisSince(job_begin);
        if (!task.progress.empty()) {
            double elapsed = millisSince(begin);
            std::fprintf(stderr, "%s done (%zu/%zu, %.1f ms%s)\n",
                         task.progress.c_str(), i + 1, tasks.size(),
                         jobMillis[i],
                         etaSuffix(elapsed, i + 1, tasks.size()).c_str());
        }
    }
    return results;
}

std::vector<RunResult>
SweepRunner::runParallel(unsigned workers)
{
    std::vector<RunResult> results(tasks.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errorMutex;
    std::mutex progressMutex;
    SteadyClock::time_point begin = SteadyClock::now();

    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size() || failed.load(std::memory_order_relaxed))
                return;
            SteadyClock::time_point job_begin = SteadyClock::now();
            try {
                results[i] = tasks[i].fn();
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
            // Each slot is written by exactly one worker; the joins in
            // run() publish the values to the caller.
            jobMillis[i] = millisSince(job_begin);
            std::size_t done =
                completed.fetch_add(1, std::memory_order_relaxed) + 1;
            if (!tasks[i].progress.empty()) {
                // One fprintf per line keeps concurrent workers from
                // tearing each other's output mid-line.
                double elapsed = millisSince(begin);
                std::lock_guard<std::mutex> lock(progressMutex);
                std::fprintf(
                    stderr, "%s done (%zu/%zu, %.1f ms%s)\n",
                    tasks[i].progress.c_str(), done, tasks.size(),
                    jobMillis[i],
                    etaSuffix(elapsed, done, tasks.size()).c_str());
            }
        }
    };

    std::size_t spawn = workers;
    std::vector<std::thread> pool;
    pool.reserve(spawn);
    for (std::size_t i = 0; i < spawn; ++i)
        pool.emplace_back(worker);
    for (std::thread &thread : pool)
        thread.join();

    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

} // namespace sw
