#include "harness/sweep.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "sim/logging.hh"

namespace sw {

unsigned
SweepRunner::defaultJobs()
{
    if (const char *env = std::getenv("SW_JOBS"); env && *env) {
        char *end = nullptr;
        unsigned long parsed = std::strtoul(env, &end, 10);
        if (end == env || *end != '\0' || parsed == 0)
            fatal("SW_JOBS='%s' is not a positive integer", env);
        return static_cast<unsigned>(parsed);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs ? jobs : defaultJobs())
{
}

std::size_t
SweepRunner::submit(SweepJob job)
{
    SW_ASSERT(job.info != nullptr, "sweep job without a benchmark");
    std::string progress;
    if (!job.label.empty()) {
        progress = strprintf("  [%s] %s...", job.label.c_str(),
                             job.info->abbr.c_str());
    }
    return submit(std::move(progress), [job = std::move(job)]() {
        // Specs are built per execution: RunSpec is move-only (it can
        // carry a workload instance) while queued JobFns must stay
        // copyable, and the copyable SweepJob holds everything needed.
        RunSpec spec;
        spec.cfg = job.cfg;
        spec.benchmark = job.info;
        spec.footprintScale = job.footprintScale;
        spec.limits = job.limits;
        spec.obs = job.obs;
        return sw::run(std::move(spec));
    });
}

std::size_t
SweepRunner::submit(std::string progress, JobFn fn)
{
    SW_ASSERT(fn != nullptr, "sweep job without a function");
    tasks.push_back(Task{std::move(progress), std::move(fn)});
    return tasks.size() - 1;
}

unsigned
SweepRunner::effectiveWorkers(std::size_t pending) const
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    unsigned workers = std::min(jobs_, hw);
    if (pending < workers)
        workers = static_cast<unsigned>(pending);
    return workers;
}

std::vector<RunResult>
SweepRunner::run()
{
    unsigned workers = effectiveWorkers(tasks.size());
    std::vector<RunResult> results =
        workers <= 1 ? runSerial() : runParallel(workers);
    tasks.clear();
    return results;
}

std::vector<RunResult>
SweepRunner::runSerial()
{
    // The SW_JOBS=1 contract: identical to the historical serial loop —
    // same order, same progress lines at the same moments, exceptions
    // surfacing straight from the failing job.
    std::vector<RunResult> results;
    results.reserve(tasks.size());
    for (Task &task : tasks) {
        if (!task.progress.empty())
            std::fprintf(stderr, "%s\n", task.progress.c_str());
        results.push_back(task.fn());
    }
    return results;
}

std::vector<RunResult>
SweepRunner::runParallel(unsigned workers)
{
    std::vector<RunResult> results(tasks.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errorMutex;
    std::mutex progressMutex;

    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size() || failed.load(std::memory_order_relaxed))
                return;
            try {
                results[i] = tasks[i].fn();
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
            std::size_t done =
                completed.fetch_add(1, std::memory_order_relaxed) + 1;
            if (!tasks[i].progress.empty()) {
                // One fprintf per line keeps concurrent workers from
                // tearing each other's output mid-line.
                std::lock_guard<std::mutex> lock(progressMutex);
                std::fprintf(stderr, "%s done (%zu/%zu)\n",
                             tasks[i].progress.c_str(), done, tasks.size());
            }
        }
    };

    std::size_t spawn = workers;
    std::vector<std::thread> pool;
    pool.reserve(spawn);
    for (std::size_t i = 0; i < spawn; ++i)
        pool.emplace_back(worker);
    for (std::thread &thread : pool)
        thread.join();

    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

} // namespace sw
